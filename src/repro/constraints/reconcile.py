"""Cross-shard constraint reconciliation (the sharded engine's verdict).

When a document is evaluated in shards (:mod:`repro.runtime.sharding`),
each worker holds only its slice of the partition production's children,
so no worker can decide a key or inclusion constraint on its own: a key
value may be unique within every shard yet duplicated across two of
them, and an inclusion source may find its matching target only in
another shard's slice.  Reconciliation splits the decision:

* **collect** (worker side, :func:`collect_evidence`): for *shared*
  contexts (the partition production and its ancestors and siblings —
  identical structure in every shard) one walk gathers, per constraint
  and per context node, the field tuples the tree checker would have
  extracted — counts for key targets, value sets for inclusion
  sources/targets.  *Local* contexts (strictly inside this shard's
  slice) contain every target the checker would inspect, so the worker
  judges them on the spot and ships only the non-``None`` violations
  (:class:`LocalVerdict`) — shipping per-value evidence there would
  make IPC scale with document size instead of violation count.  A
  constraint whose engine guard query stayed clean provably has no
  local violation, so its local scan is skipped entirely (``suspects``;
  degraded runs fall back to the full scan).  Contexts are addressed by
  their *order path* (the tuple of child indices from the root), which
  is stable across shards for everything outside the partition subtree.
* **reconcile** (parent side, :func:`reconcile`): shared-context
  evidence is merged — key counts from inside the partition subtree are
  summed across shards on top of the outside counts taken once,
  inclusion sets are unioned — and judged by the exact same value-level
  helpers the tree checker uses
  (:func:`repro.constraints.checker.key_violation` /
  :func:`~repro.constraints.checker.inclusion_violation`); local
  verdicts are re-addressed by offsetting their order path at the
  splice depth by the number of partition children in earlier shards.
  The result is string-identical to running the checker on the merged
  document.

Pre-order traversal of a tree equals lexicographic order of order
paths, so sorting merged contexts by (adjusted) order path reproduces
the single-process checker's violation order exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constraints.checker import (
    Violation,
    _field_tuple,
    inclusion_violation,
    key_violation,
)
from repro.constraints.model import Constraint, InclusionConstraint, Key
from repro.xmlmodel.node import XMLElement


@dataclass
class KeyEvidence:
    """One key context's value counts in one shard document.

    ``outside`` counts targets that are not inside the partition subtree
    (replicated identically in every shard — merged by taking the first
    shard's copy); ``inside`` counts targets within this shard's slice
    (merged by summation).
    """

    order_path: tuple[int, ...]
    context_path: str
    local: bool
    outside: dict = field(default_factory=dict)
    inside: dict = field(default_factory=dict)


@dataclass
class InclusionEvidence:
    """One inclusion context's source/target value sets in one shard.

    Sets union idempotently, so inclusion evidence needs no
    outside/inside split — replicated values collapse on merge.
    """

    order_path: tuple[int, ...]
    context_path: str
    local: bool
    sources: set = field(default_factory=set)
    targets: set = field(default_factory=set)


@dataclass
class LocalVerdict:
    """A violation already decided inside one shard.

    A *local* context lives strictly inside one shard's slice, so every
    target/source the checker would inspect is in the same shard: the
    worker judges it on the spot and ships only the outcome.  Shipping
    per-value evidence for local contexts would make IPC and the
    parent's reconcile pass scale with document size instead of with
    the (usually tiny) number of violations.
    """

    order_path: tuple[int, ...]
    violation: Violation


@dataclass
class ShardEvidence:
    """All constraint evidence from one shard document.

    ``per_constraint[i]`` lists the evidence entries for
    ``constraints[i]`` (same order as the AIG's constraint list);
    ``partition_children`` is the number of children the shard
    contributed at the splice node, which fixes the order-path offsets
    during reconciliation.
    """

    per_constraint: list
    partition_children: int


def _shared_paths(tree: XMLElement, splice: XMLElement | None):
    """Order paths for every element *outside* the partition subtree.

    The walk does not descend into ``splice`` (its children are the
    shard's slice — the bulk of the document), so this is O(shared
    part), not O(document).  An element is local exactly when its id is
    absent from the returned map.  Also returns the shared elements
    themselves, so callers can enumerate shared contexts without a
    full-document scan.
    """
    paths: dict[int, tuple[int, ...]] = {id(tree): ()}
    nodes: list[XMLElement] = [tree]
    if tree is splice:
        return paths, nodes
    stack: list = [(tree, ())]
    while stack:
        node, path = stack.pop()
        index = 0
        for child in node.children:
            if not isinstance(child, XMLElement):
                continue
            child_path = path + (index,)
            paths[id(child)] = child_path
            nodes.append(child)
            if child is not splice:
                stack.append((child, child_path))
            index += 1
    return paths, nodes


def _order_path(node: XMLElement) -> tuple[int, ...]:
    """One element's child-index path, by walking up to the root.

    Linear in tree depth plus sibling counts along the way — used only
    for *violating* local contexts, which are rare; the non-violating
    bulk never pays for path construction.
    """
    path: list[int] = []
    while node.parent is not None:
        index = 0
        for sibling in node.parent.children:
            if sibling is node:
                break
            if isinstance(sibling, XMLElement):
                index += 1
        path.append(index)
        node = node.parent
    return tuple(reversed(path))


def collect_evidence(tree: XMLElement, constraints: list[Constraint],
                     splice: XMLElement | None,
                     suspects=None) -> ShardEvidence:
    """Gather one shard document's per-context constraint evidence.

    ``splice`` is the partition production's element in this shard (its
    children are the shard's slice); ``None`` means the whole document
    is shared (the degenerate single-shard case).

    ``suspects``, when given, is the set of constraints whose engine
    guard query fired on this shard document.  A guard is a whole-
    document check, so a clean guard proves no context — shared or
    local — violates within this shard; local contexts (whose verdict
    depends on this shard alone) then need no scan at all.  Shared
    contexts are always collected: their verdict depends on other
    shards' slices, which the guard cannot see.  Pass ``None`` when
    guard outcomes are unavailable or untrustworthy (e.g. a degraded
    run may have skipped guard nodes), which scans everything.
    """
    shared, shared_nodes = _shared_paths(tree, splice)
    per_constraint: list = []
    for constraint in constraints:
        entries = []
        scan_local = (splice is not None
                      and (suspects is None or constraint in suspects))
        if isinstance(constraint, Key):
            for context in shared_nodes:
                if context.tag != constraint.context:
                    continue
                entry = KeyEvidence(shared[id(context)],
                                    context.path(), False)
                for target in context.iter(constraint.target):
                    value = _field_tuple(target, constraint.fields)
                    if value is None:
                        continue
                    bucket = (entry.outside if id(target) in shared
                              else entry.inside)
                    bucket[value] = bucket.get(value, 0) + 1
                entries.append(entry)
            if scan_local:
                for context in splice.iter(constraint.context):
                    if context is splice:
                        continue
                    # Local context: every target is in this shard —
                    # judge here, ship only a non-None outcome.
                    counts: dict = {}
                    for target in context.iter(constraint.target):
                        value = _field_tuple(target, constraint.fields)
                        if value is not None:
                            counts[value] = counts.get(value, 0) + 1
                    violation = key_violation(constraint, context.path(),
                                              counts)
                    if violation is not None:
                        entries.append(LocalVerdict(
                            _order_path(context), violation))
        elif isinstance(constraint, InclusionConstraint):
            for context in shared_nodes:
                if context.tag != constraint.context:
                    continue
                entry = InclusionEvidence(shared[id(context)],
                                          context.path(), False)
                for node in context.iter(constraint.source):
                    value = _field_tuple(node, constraint.source_fields)
                    if value is not None:
                        entry.sources.add(value)
                for node in context.iter(constraint.target):
                    value = _field_tuple(node, constraint.target_fields)
                    if value is not None:
                        entry.targets.add(value)
                entries.append(entry)
            if scan_local:
                for context in splice.iter(constraint.context):
                    if context is splice:
                        continue
                    sources: set = set()
                    targets: set = set()
                    for node in context.iter(constraint.source):
                        value = _field_tuple(node,
                                             constraint.source_fields)
                        if value is not None:
                            sources.add(value)
                    for node in context.iter(constraint.target):
                        value = _field_tuple(node,
                                             constraint.target_fields)
                        if value is not None:
                            targets.add(value)
                    violation = inclusion_violation(
                        constraint, context.path(), sources, targets)
                    if violation is not None:
                        entries.append(LocalVerdict(
                            _order_path(context), violation))
        else:
            raise TypeError(f"unknown constraint type "
                            f"{type(constraint).__name__}")
        per_constraint.append(entries)
    children = len([c for c in (splice.children if splice is not None
                                else [])
                    if isinstance(c, XMLElement)])
    return ShardEvidence(per_constraint, children)


def _adjusted(entry, offset: int, splice_depth: int) -> tuple[int, ...]:
    """A local context's order path in the *merged* document."""
    if not entry.local or offset == 0:
        return entry.order_path
    path = list(entry.order_path)
    path[splice_depth] += offset
    return tuple(path)


def reconcile(constraints: list[Constraint],
              evidences: list[ShardEvidence],
              splice_depth: int) -> list[Violation]:
    """Merge per-shard evidence into the global constraint verdict.

    ``evidences`` must be in shard order (shard 0's partition children
    come first in the merged document); ``splice_depth`` is the length
    of the chain from the root to the partition production, i.e. the
    order-path index at which local contexts need offsetting.
    """
    offsets = []
    total = 0
    for evidence in evidences:
        offsets.append(total)
        total += evidence.partition_children
    violations: list[Violation] = []
    for index, constraint in enumerate(constraints):
        merged: dict[tuple[int, ...], object] = {}
        for evidence, offset in zip(evidences, offsets):
            for entry in evidence.per_constraint[index]:
                if isinstance(entry, LocalVerdict):
                    # Already judged in its shard; only its order path
                    # needs re-addressing into the merged document.
                    if offset == 0:
                        merged[entry.order_path] = entry
                    else:
                        path = list(entry.order_path)
                        path[splice_depth] += offset
                        merged[tuple(path)] = entry
                    continue
                path = _adjusted(entry, offset, splice_depth)
                existing = merged.get(path)
                if existing is None:
                    if isinstance(entry, KeyEvidence):
                        merged[path] = KeyEvidence(
                            path, entry.context_path, entry.local,
                            dict(entry.outside), dict(entry.inside))
                    else:
                        merged[path] = InclusionEvidence(
                            path, entry.context_path, entry.local,
                            set(entry.sources), set(entry.targets))
                elif isinstance(entry, KeyEvidence):
                    # outside counts are replicated per shard: keep the
                    # first copy; inside counts are disjoint slices: sum
                    for value, count in entry.inside.items():
                        existing.inside[value] = (
                            existing.inside.get(value, 0) + count)
                else:
                    existing.sources |= entry.sources
                    existing.targets |= entry.targets
        for path in sorted(merged):
            entry = merged[path]
            if isinstance(entry, LocalVerdict):
                violations.append(entry.violation)
                continue
            if isinstance(entry, KeyEvidence):
                counts = dict(entry.outside)
                for value, count in entry.inside.items():
                    counts[value] = counts.get(value, 0) + count
                violation = key_violation(constraint, entry.context_path,
                                          counts)
            else:
                violation = inclusion_violation(
                    constraint, entry.context_path,
                    entry.sources, entry.targets)
            if violation is not None:
                violations.append(violation)
    return violations
