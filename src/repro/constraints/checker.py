"""Direct validation of XML keys and inclusion constraints over trees.

These checkers walk the materialized tree and are the semantic ground truth:
the constraint-compilation path (Section 3.3) must abort generation exactly
when these checkers would report a violation on the finished document.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.model import Constraint, InclusionConstraint, Key
from repro.xmlmodel.node import XMLElement


@dataclass(frozen=True)
class Violation:
    """One constraint violation, located at a context element."""

    constraint: Constraint
    context_path: str
    detail: str

    def __str__(self) -> str:
        return f"{self.constraint} violated at {self.context_path}: {self.detail}"


def check_constraint(tree: XMLElement, constraint: Constraint) -> list[Violation]:
    """All violations of one constraint in ``tree``."""
    if isinstance(constraint, Key):
        return _check_key(tree, constraint)
    if isinstance(constraint, InclusionConstraint):
        return _check_inclusion(tree, constraint)
    raise TypeError(f"unknown constraint type {type(constraint).__name__}")


def check_constraints(tree: XMLElement,
                      constraints: list[Constraint],
                      tracer=None) -> list[Violation]:
    """All violations of all constraints, in constraint order.

    ``tracer`` (see :mod:`repro.obs`) records one ``constraint`` span per
    constraint checked plus ``constraint_checks``/``violations_found``
    counters; the default no-op tracer adds nothing.
    """
    from repro.obs.tracer import NULL_TRACER
    tracer = NULL_TRACER if tracer is None else tracer
    violations: list[Violation] = []
    for constraint in constraints:
        with tracer.span(str(constraint), "constraint") as span:
            found = check_constraint(tree, constraint)
            span.set(violations=len(found))
        violations.extend(found)
    tracer.metrics.add("constraint_checks", len(constraints))
    tracer.metrics.add("violations_found", len(violations))
    return violations


def find_violations(tree: XMLElement,
                    constraints: list[Constraint]) -> list[Violation]:
    """Alias of :func:`check_constraints` (reads better at call sites)."""
    return check_constraints(tree, constraints)


def satisfies(tree: XMLElement, constraints: list[Constraint]) -> bool:
    return not check_constraints(tree, constraints)


def _field_tuple(node: XMLElement, fields: tuple[str, ...]):
    """The node's (f1,...,fk) subelement value tuple; None if any absent."""
    values = tuple(node.subelement_value(f) for f in fields)
    if any(value is None for value in values):
        return None
    return values


def key_violation(key: Key, context_path: str,
                  counts: dict[tuple, int]) -> Violation | None:
    """The violation for one key context given its value counts, if any.

    ``counts`` maps each target field tuple to its multiplicity inside the
    context; the cross-shard reconcile pass (:mod:`repro.constraints.
    reconcile`) builds these counts by summing per-shard counters, so the
    wording here must stay byte-identical to the tree checker's.
    """
    duplicates = sorted(v for v, count in counts.items() if count > 1)
    if not duplicates:
        return None
    shown = [v[0] if len(v) == 1 else v for v in duplicates]
    return Violation(
        key, context_path,
        f"duplicate {'/'.join(key.fields)} value(s) {shown} among "
        f"{key.target} elements")


def inclusion_violation(ic: InclusionConstraint, context_path: str,
                        source_values, target_values) -> Violation | None:
    """The violation for one inclusion context given its value sets, if any.

    ``source_values``/``target_values`` are the field tuples observed for
    the context (``None`` entries, from nodes missing a field, are
    ignored).  Shared with the cross-shard reconcile pass, which unions the
    per-shard sets before calling this.
    """
    available = set(target_values)
    available.discard(None)
    missing = sorted({value for value in source_values
                      if value is not None and value not in available})
    if not missing:
        return None
    shown = [v[0] if len(v) == 1 else v for v in missing]
    return Violation(
        ic, context_path,
        f"{ic.source}.{'/'.join(ic.source_fields)} value(s) {shown} "
        f"have no matching "
        f"{ic.target}.{'/'.join(ic.target_fields)}")


def _check_key(tree: XMLElement, key: Key) -> list[Violation]:
    violations: list[Violation] = []
    for context_node in tree.iter(key.context):
        seen: dict[tuple, int] = {}
        for target_node in context_node.iter(key.target):
            value = _field_tuple(target_node, key.fields)
            if value is None:
                continue
            seen[value] = seen.get(value, 0) + 1
        violation = key_violation(key, context_node.path(), seen)
        if violation is not None:
            violations.append(violation)
    return violations


def _check_inclusion(tree: XMLElement,
                     ic: InclusionConstraint) -> list[Violation]:
    violations: list[Violation] = []
    for context_node in tree.iter(ic.context):
        targets = {_field_tuple(node, ic.target_fields)
                   for node in context_node.iter(ic.target)}
        sources = {_field_tuple(node, ic.source_fields)
                   for node in context_node.iter(ic.source)}
        violation = inclusion_violation(ic, context_node.path(),
                                        sources, targets)
        if violation is not None:
            violations.append(violation)
    return violations
