"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``demo [--scale S] [--date D] [--no-merge] [--dynamic] [--workers N]
  [--shards N] [--trace FILE] [--metrics] [--metrics-json FILE]
  [--faults SPEC] [--retries N] [--deadline S] [--degrade]`` — generate a
  hospital dataset and produce one day's report through the middleware,
  printing summary statistics (add ``--xml`` to dump the document;
  ``--workers N`` or ``--workers auto`` executes per-source query
  sequences concurrently; ``--shards N`` partitions the document by key
  range and evaluates in N worker processes — see docs/SHARDING.md;
  ``--trace`` writes a Chrome trace-event JSON loadable in Perfetto /
  ``chrome://tracing`` with one track per worker lane; ``--faults``
  injects deterministic failures, recovered by ``--retries``/``--degrade``
  — see docs/RESILIENCE.md).
* ``calibrate [--scale S] [--workers N] [--json FILE]`` — run one report
  and print the cost-model calibration: the optimizer's modeled
  ``eval_cost``/``size`` per QDG node joined against measured wall time
  and bytes, with q-error aggregates (see docs/OBSERVABILITY.md).
* ``profile [--scale S] [--runs N] [--feedback FILE] [--ledger FILE]
  [--prometheus FILE] [--json FILE]`` — EXPLAIN ANALYZE: evaluate under
  measurement and print the executed plan annotated with estimated vs
  measured rows/seconds and per-node q-error; ``--runs N`` with a
  feedback store shows the cost model learning between runs.
* ``check [--scale S]`` — the full cross-path equivalence check: conceptual
  vs. optimized evaluation, DTD conformance, constraint satisfaction.
* ``fuzz [--seeds N] [--start N] [--violate-every N] [--seed-file FILE]
  [--shrink] [--out DIR]`` — differential fuzzing: seeded random AIGs
  evaluated under the full configuration grid (conceptual vs. middleware
  × merging × scheduling × workers × incremental × fault-recovery),
  writing a JSON repro file for any divergence (see docs/TESTING.md).
* ``serve [--host H] [--port P] [--scale S] [--workers N] [--no-merge]
  [--no-incremental] [--max-inflight N] [--queue-depth N]
  [--max-tenants N] [--tenant-ttl S] [--ledger FILE] [--feedback FILE]``
  — run the long-lived multi-tenant evaluation service (docs/SERVICE.md):
  compiled plans, incremental caches, pooled connections, breakers, and
  cost-feedback state stay warm across HTTP requests; a hospital tenant
  is pre-registered; ``--max-tenants``/``--tenant-ttl`` bound the
  registry with LRU + idle-TTL eviction.
* ``explain`` — print the optimizer's plan; ``info`` — component inventory.

Every command accepts ``-v/--verbose`` (repeatable) and ``--quiet``, which
configure stdlib logging for the ``repro.`` namespace.
"""

from __future__ import annotations

import argparse
import json
import sys


def _make_tracer(args):
    """A recording tracer when any observability output was requested."""
    if (getattr(args, "trace", None) or getattr(args, "metrics", False)
            or getattr(args, "metrics_json", None)
            or getattr(args, "prometheus", None)):
        from repro.obs import Tracer
        return Tracer()
    return None


def _export_observability(tracer, args) -> None:
    if tracer is None:
        return
    from repro.obs import (text_summary, write_chrome_trace, write_metrics,
                           write_prometheus)
    if getattr(args, "trace", None):
        spans = write_chrome_trace(tracer, args.trace)
        print(f"trace: {spans} span(s) on {len(tracer.tracks())} track(s) "
              f"-> {args.trace} (open in Perfetto / chrome://tracing)")
    if getattr(args, "metrics_json", None):
        payload = write_metrics(tracer, args.metrics_json)
        named = (len(payload.get("counters", {}))
                 + len(payload.get("gauges", {})))
        print(f"metrics: {named} counter(s)/gauge(s) -> {args.metrics_json}")
    if getattr(args, "prometheus", None):
        lines = write_prometheus(tracer, args.prometheus)
        print(f"prometheus: {lines} line(s) -> {args.prometheus}")
    if getattr(args, "metrics", False):
        print(text_summary(tracer))


def _backend_value(value: str):
    """``--backend`` value: one spec, or ``DB1=file,DB3=duckdb`` pairs."""
    from repro.relational import registered_backends

    def checked(spec: str) -> str:
        base = spec.split(":", 1)[0]
        if base not in registered_backends():
            raise argparse.ArgumentTypeError(
                f"unknown backend {base!r} "
                f"(registered: {', '.join(registered_backends())})")
        return spec
    if "=" not in value:
        return checked(value)
    assignment = {}
    for part in value.split(","):
        name, _, spec = part.partition("=")
        if not name or not spec:
            raise argparse.ArgumentTypeError(
                f"bad assignment {part!r} "
                f"(expected SOURCE=SPEC, e.g. DB1=file)")
        assignment[name.strip()] = checked(spec.strip())
    return assignment


def _demo(args) -> int:
    from repro import Middleware, Network, serialize
    from repro.datagen import make_loaded_sources
    from repro.hospital import build_hospital_aig

    aig = build_hospital_aig()
    backend = args.backend
    sources, dataset = make_loaded_sources(args.scale, backend=backend)
    if backend is not None:
        assigned = ", ".join(f"{name}={source.backend.spec}"
                             for name, source in sorted(sources.items()))
        print(f"backends: {assigned}")
    date = args.date or dataset.busiest_date()
    tracer = _make_tracer(args)
    retry_policy = None
    if args.retries is not None:
        from repro.resilience import RetryPolicy
        retry_policy = RetryPolicy(retries=args.retries,
                                   seed=args.fault_seed)
    middleware = Middleware(
        aig, sources, Network.mbps(args.mbps),
        merging=not args.no_merge,
        scheduling="dynamic" if args.dynamic else "static",
        unfold_depth="auto",
        workers=args.workers,
        tracer=tracer,
        retry_policy=retry_policy,
        deadline=args.deadline,
        on_source_failure="degrade" if args.degrade else "abort",
        incremental=args.incremental,
        ledger=args.ledger,
        shards=args.shards)
    injector = None
    if args.faults:
        from repro.resilience import FaultInjector
        injector = FaultInjector.from_spec(args.faults, seed=args.fault_seed)
        injector.install(sources)
        print(f"faults: {args.faults} (seed {args.fault_seed})")
    warm = None
    try:
        report = middleware.evaluate({"date": date})
        if args.incremental:
            warm = middleware.evaluate({"date": date})
    finally:
        if injector is not None:
            injector.uninstall(sources)
    patients = len(report.document.find_all("patient"))
    print(f"report for {date} ({args.scale} dataset): "
          f"{patients} patients, {report.document.size()} nodes")
    print(f"plan: {report.node_count} queries "
          f"(merging {'on' if report.merged else 'off'}, "
          f"unfold depth {report.unfold_depth}); "
          f"simulated response {report.response_time:.2f}s at "
          f"{args.mbps:g} Mbps, {report.bytes_shipped} bytes shipped")
    print(f"execution: {report.workers} worker lane(s), "
          f"{report.measured_seconds:.3f}s wall, "
          f"parallel speedup {report.parallel_speedup:.2f}x")
    if report.shards > 1:
        rss = (max(report.shard_peak_rss) if report.shard_peak_rss else 0)
        print(f"sharding: {report.shards} process(es), rows/shard "
              f"{report.shard_rows}, reconcile "
              f"{report.reconcile_seconds * 1000:.1f}ms, IPC "
              f"{report.ipc_bytes} bytes, peak worker RSS {rss} KiB")
    elif args.shards > 1:
        print("sharding: requested but the AIG has no eligible partition "
              "production; ran single-process")
    if warm is not None:
        ratio = (report.measured_seconds
                 / max(warm.measured_seconds, 1e-9))
        identical = warm.document == report.document
        print(f"incremental re-run: {warm.queries_executed} queries "
              f"({warm.reused_nodes} node(s) reused, "
              f"{warm.subtrees_spliced} subtree(s) spliced), "
              f"{warm.measured_seconds:.4f}s wall ({ratio:.0f}x faster), "
              f"identical={identical}")
    if injector is not None:
        fired = ", ".join(str(clause)
                          for _, clause in injector.fired) or "none"
        print(f"faults fired: {fired}")
    if report.failure_report is not None:
        print(f"DEGRADED: {report.failure_report.summary()}")
    _export_observability(tracer, args)
    if args.xml:
        print(serialize(report.document, indent=2))
    return 0


def _calibrate(args) -> int:
    from repro import Middleware, Network
    from repro.datagen import make_loaded_sources
    from repro.hospital import build_hospital_aig

    aig = build_hospital_aig()
    sources, dataset = make_loaded_sources(args.scale)
    date = args.date or dataset.busiest_date()
    middleware = Middleware(aig, sources, Network.mbps(args.mbps),
                            merging=not args.no_merge,
                            unfold_depth="auto",
                            workers=args.workers)
    middleware.evaluate({"date": date})
    report = middleware.calibration_report()
    print(report.to_text())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"calibration: {len(report.nodes)} node(s) -> {args.json}")
    return 0


def _profile(args) -> int:
    from repro import Middleware, Network
    from repro.datagen import make_loaded_sources
    from repro.hospital import build_hospital_aig
    from repro.obs import CostFeedbackStore, build_profile, \
        profile_evaluation

    aig = build_hospital_aig()
    sources, dataset = make_loaded_sources(args.scale)
    date = args.date or dataset.busiest_date()
    tracer = _make_tracer(args)
    feedback = None
    if args.feedback:
        feedback = CostFeedbackStore(args.feedback)
    elif args.runs > 1:
        feedback = CostFeedbackStore()  # in-memory: learn across --runs
    middleware = Middleware(aig, sources, Network.mbps(args.mbps),
                            merging=not args.no_merge,
                            unfold_depth="auto",
                            workers=args.workers,
                            tracer=tracer,
                            cost_feedback=feedback,
                            ledger=args.ledger)
    for run in range(1, args.runs + 1):
        report, text = profile_evaluation(middleware, {"date": date})
        if args.runs > 1:
            print(f"-- run {run}/{args.runs} --")
        print(text)
        aggregates = middleware.calibration_report().aggregates()
        print(f"calibrate: q-error median rows "
              f"{aggregates['rows_q_error']['median']:.2f}, seconds "
              f"{aggregates['seconds_q_error']['median']:.2f} "
              f"(mean {aggregates['seconds_q_error']['mean']:.2f}, "
              f"max {aggregates['seconds_q_error']['max']:.2f})")
        if run < args.runs:
            print()
    if args.json:
        profiled = build_profile(middleware._last_graph,
                                 middleware._last_estimates,
                                 middleware._last_result.timings)
        payload = {"nodes": [node.to_dict() for node in profiled],
                   "calibration":
                       middleware.calibration_report().aggregates()}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"profile: {len(profiled)} node(s) -> {args.json}")
    if args.ledger:
        print(f"ledger: {args.runs} record(s) appended -> {args.ledger}")
    _export_observability(tracer, args)
    return 0


def _check(args) -> int:
    from repro import ConceptualEvaluator, Middleware, Network, conforms_to
    from repro.constraints import check_constraints
    from repro.datagen import make_loaded_sources
    from repro.hospital import build_hospital_aig

    aig = build_hospital_aig()
    sources, dataset = make_loaded_sources(args.scale)
    date = dataset.busiest_date()
    conceptual = ConceptualEvaluator(
        aig, list(sources.values())).evaluate({"date": date})
    failures = 0
    for merging in (False, True):
        report = Middleware(aig, sources, Network.mbps(1.0),
                            merging=merging).evaluate({"date": date})
        label = "merged" if merging else "unmerged"
        same = report.document == conceptual
        conforms = conforms_to(report.document, aig.dtd)
        satisfied = not check_constraints(report.document, aig.constraints)
        print(f"{label:>9s}: identical={same} conforms={conforms} "
              f"constraints={satisfied}")
        failures += (not same) + (not conforms) + (not satisfied)
    print("OK" if failures == 0 else f"{failures} check(s) FAILED")
    return 0 if failures == 0 else 1


def _explain(args) -> int:
    from repro import Middleware, Network
    from repro.datagen import make_loaded_sources
    from repro.hospital import build_hospital_aig

    sources, dataset = make_loaded_sources(args.scale)
    middleware = Middleware(build_hospital_aig(), sources, Network.mbps(1.0),
                            merging=not args.no_merge,
                            unfold_depth=args.depth,
                            incremental=args.incremental)
    depth = args.depth
    if args.analyze:
        # EXPLAIN ANALYZE: evaluate under measurement, then print the
        # plan followed by the est-vs-measured annotation of what ran.
        from repro.obs import profile_evaluation
        _, analyze_text = profile_evaluation(
            middleware, {"date": dataset.busiest_date()})
        print(middleware.explain(middleware._last_depth))
        print()
        print(analyze_text)
        return 0
    if args.incremental:
        # Warm the cache so the report can show per-node taint state; the
        # runtime re-unrolling loop may have settled on a deeper unfolding
        # than requested — explain the depth that actually evaluated.
        middleware.evaluate({"date": dataset.busiest_date()})
        depth = middleware._last_depth
    print(middleware.explain(depth))
    return 0


def _fuzz(args) -> int:
    import logging
    import os

    from repro.fuzz import (FuzzGenerationError, from_json,
                            generate_scenario, run_oracle, shrink, to_json)

    if not args.verbose:
        # report-mode guard findings and retry warnings are *expected*
        # on violation-injected and fault-injected iterations
        logging.getLogger("repro").setLevel(logging.ERROR)

    def artifact(name: str, spec, report) -> str:
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, name)
        spec.notes["divergences"] = [str(d) for d in report.divergences]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(to_json(spec))
            handle.write("\n")
        return path

    def handle_divergence(spec, report) -> None:
        print(f"seed {spec.seed}: DIVERGED "
              f"({len(report.divergences)} finding(s))")
        for divergence in report.divergences:
            print(f"    {divergence}")
        name = f"repro_fuzz_{spec.seed:05d}.json"
        if args.shrink:
            configs = tuple({d.config for d in report.divergences})
            small = shrink(spec, configs=configs)
            print(f"    shrunk {spec.production_count()} -> "
                  f"{small.production_count()} production(s), "
                  f"{sum(len(t.rows) for t in small.tables)} row(s) "
                  f"({small.notes['shrink']['checks']} probe(s))")
            spec = small
            report = run_oracle(spec, configs)
        path = artifact(name, spec, report)
        print(f"    repro written to {path}")

    if args.seed_file:
        with open(args.seed_file, encoding="utf-8") as handle:
            spec = from_json(handle.read())
        report = run_oracle(spec)
        if report.ok:
            print(f"{args.seed_file}: no divergence "
                  f"({len(report.results)} configuration(s) agree)")
            return 0
        handle_divergence(spec, report)
        return 1

    diverged = 0
    configurations = 0
    for seed in range(args.start, args.start + args.seeds):
        violate = (args.violate_every > 0
                   and seed % args.violate_every == args.violate_every - 1)
        try:
            spec = generate_scenario(seed, violate=violate)
        except FuzzGenerationError as error:
            print(f"seed {seed}: generation failed: {error}")
            diverged += 1
            continue
        report = run_oracle(spec)
        configurations += len(report.results)
        if args.verbose:
            print(f"seed {seed}: {'ok' if report.ok else 'DIVERGED'} "
                  f"[{spec.production_count()} production(s), "
                  f"{len(spec.tables)} table(s)"
                  f"{', violation-injected' if violate else ''}]")
        if not report.ok:
            diverged += 1
            handle_divergence(spec, report)
    verdict = ("zero divergence" if diverged == 0
               else f"{diverged} DIVERGENT seed(s)")
    print(f"fuzz: {args.seeds} seed(s), {configurations} configuration "
          f"run(s), {verdict}")
    return 0 if diverged == 0 else 1


def _serve(args) -> int:
    from repro.datagen import make_loaded_sources
    from repro.hospital import build_hospital_aig
    from repro.service import EvaluationService
    from repro.service.server import serve_forever

    service = EvaluationService(max_inflight=args.max_inflight,
                                max_queued=args.queue_depth,
                                max_tenants=args.max_tenants,
                                tenant_ttl=args.tenant_ttl)
    aig = build_hospital_aig()
    sources, _ = make_loaded_sources(args.scale)
    config = {"merging": not args.no_merge,
              "incremental": not args.no_incremental,
              "workers": args.workers,
              "unfold_depth": "auto"}
    if args.ledger:
        config["ledger"] = args.ledger
    if args.feedback:
        config["cost_feedback"] = args.feedback
    state = service.register_tenant("hospital", aig, sources, config)
    print(f"tenant 'hospital' registered ({args.scale} dataset, "
          f"plan key {state.plan_key})")
    serve_forever(service, args.host, args.port)
    return 0


def _faults_value(text: str) -> str:
    """argparse type for ``--faults``: validate the spec grammar early."""
    from repro.errors import SpecError
    from repro.resilience import parse_fault_spec
    try:
        parse_fault_spec(text)
    except SpecError as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    return text


def _workers_value(text: str):
    """argparse type for ``--workers``: a positive int or ``auto``."""
    if text == "auto":
        return "auto"
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {text!r}")
    return value


def _shards_value(text: str) -> int:
    """argparse type for ``--shards``: a positive int."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}")
    return value


def _info(args) -> int:
    import repro
    print(f"repro {repro.__version__} — Attribute Integration Grammars")
    print("reproduction of Benedikt, Chan, Fan, Freire, Rastogi: "
          "'Capturing both Types and Constraints in Data Integration' "
          "(SIGMOD 2003)")
    components = [
        ("repro.aig", "grammar, rules, type checking, conceptual evaluator"),
        ("repro.compilation", "constraint compilation, decomposition, "
                              "copy elimination"),
        ("repro.optimizer", "query dependency graph, cost model, "
                            "Schedule, Merge"),
        ("repro.runtime", "execution engine, tagging, recursion handling"),
        ("repro.obs", "tracing, metrics, calibration, run ledger, "
                      "cost feedback, EXPLAIN ANALYZE"),
        ("repro.analysis", "termination / reachability / CSR analyses"),
        ("repro.datagen", "Table 1 datasets (ToXgene substitute)"),
    ]
    for module, summary in components:
        print(f"  {module:20s} {summary}")
    return 0


def main(argv: list[str] | None = None) -> int:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("-v", "--verbose", action="count", default=0,
                        help="log more (-v: phase info, -vv: per-node "
                             "debug)")
    common.add_argument("--quiet", action="store_true",
                        help="log errors only")

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="AIG data-integration middleware (SIGMOD 2003 "
                    "reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", parents=[common],
                               help="generate one hospital report")
    demo.add_argument("--scale", default="tiny",
                      choices=["tiny", "small", "medium", "large"])
    demo.add_argument("--date", default=None)
    demo.add_argument("--mbps", type=float, default=1.0)
    demo.add_argument("--backend", type=_backend_value, default=None,
                      metavar="SPEC",
                      help="source backend: one spec for all sources "
                           "(sqlite, duckdb, file, file:parquet) or "
                           "per-source pairs DB1=file,DB3=duckdb "
                           "(unlisted sources stay sqlite)")
    demo.add_argument("--no-merge", action="store_true")
    demo.add_argument("--dynamic", action="store_true")
    demo.add_argument("--workers", type=_workers_value, default=1,
                      metavar="N|auto",
                      help="concurrent source lanes (default 1; 'auto' = "
                           "one per source)")
    demo.add_argument("--shards", type=_shards_value, default=1, metavar="N",
                      help="evaluate in N worker processes by key-range "
                           "document partitioning (default 1 = off; see "
                           "docs/SHARDING.md)")
    demo.add_argument("--trace", default=None, metavar="FILE",
                      help="write a Chrome trace-event JSON of the run "
                           "(Perfetto / chrome://tracing)")
    demo.add_argument("--metrics", action="store_true",
                      help="print the metrics/span summary after the run")
    demo.add_argument("--metrics-json", default=None, metavar="FILE",
                      help="write counters/gauges/span rollups as JSON")
    demo.add_argument("--prometheus", default=None, metavar="FILE",
                      help="write metrics in the Prometheus text "
                           "exposition format")
    demo.add_argument("--ledger", default=None, metavar="FILE",
                      help="append one JSONL run record per evaluation "
                           "(see docs/OBSERVABILITY.md)")
    demo.add_argument("--faults", default=None, metavar="SPEC",
                      type=_faults_value,
                      help="inject deterministic faults, e.g. "
                           "'DB2:error@3,DB1:slow@2:0.05' "
                           "(see docs/RESILIENCE.md)")
    demo.add_argument("--fault-seed", type=int, default=0, metavar="N",
                      help="seed for fault injection and retry jitter "
                           "(default 0)")
    demo.add_argument("--retries", type=int, default=None, metavar="N",
                      help="retry transient query failures up to N times "
                           "with exponential backoff (default: no retries)")
    demo.add_argument("--deadline", type=float, default=None, metavar="S",
                      help="per-query deadline in seconds")
    demo.add_argument("--degrade", action="store_true",
                      help="on unrecoverable source failure, skip optional "
                           "subtrees instead of aborting")
    demo.add_argument("--incremental", action="store_true",
                      help="enable the cross-evaluation result cache and "
                           "re-evaluate once warm to show the reuse "
                           "(see docs/INCREMENTAL.md)")
    demo.add_argument("--xml", action="store_true",
                      help="print the generated document")
    demo.set_defaults(handler=_demo)

    calibrate = commands.add_parser(
        "calibrate", parents=[common],
        help="modeled vs. measured cost per QDG node (Section 5 cost "
             "model validation)")
    calibrate.add_argument("--scale", default="tiny",
                           choices=["tiny", "small", "medium", "large"])
    calibrate.add_argument("--date", default=None)
    calibrate.add_argument("--mbps", type=float, default=1.0)
    calibrate.add_argument("--no-merge", action="store_true")
    calibrate.add_argument("--workers", type=_workers_value, default=1,
                           metavar="N|auto")
    calibrate.add_argument("--json", default=None, metavar="FILE",
                           help="also write the report as JSON")
    calibrate.set_defaults(handler=_calibrate)

    profile = commands.add_parser(
        "profile", parents=[common],
        help="EXPLAIN ANALYZE: evaluate under measurement, print est vs "
             "measured per plan node")
    profile.add_argument("--scale", default="tiny",
                         choices=["tiny", "small", "medium", "large"])
    profile.add_argument("--date", default=None)
    profile.add_argument("--mbps", type=float, default=1.0)
    profile.add_argument("--no-merge", action="store_true")
    profile.add_argument("--workers", type=_workers_value, default=1,
                         metavar="N|auto")
    profile.add_argument("--runs", type=int, default=1, metavar="N",
                         help="evaluate N times; with >1 run a cost-"
                              "feedback store is enabled so later runs "
                              "plan with measured costs")
    profile.add_argument("--feedback", default=None, metavar="FILE",
                         help="persist the cost-feedback store at FILE "
                              "(implies feedback on)")
    profile.add_argument("--ledger", default=None, metavar="FILE",
                         help="append one JSONL run record per evaluation")
    profile.add_argument("--prometheus", default=None, metavar="FILE",
                         help="write metrics in the Prometheus text "
                              "exposition format")
    profile.add_argument("--metrics", action="store_true",
                         help="print the metrics/span summary")
    profile.add_argument("--metrics-json", default=None, metavar="FILE")
    profile.add_argument("--json", default=None, metavar="FILE",
                         help="write the last run's profile as JSON")
    profile.set_defaults(handler=_profile)

    check = commands.add_parser(
        "check", parents=[common],
        help="cross-path equivalence + conformance check")
    check.add_argument("--scale", default="tiny",
                       choices=["tiny", "small", "medium", "large"])
    check.set_defaults(handler=_check)

    explain = commands.add_parser(
        "explain", parents=[common],
        help="print the optimizer's plan for the hospital AIG")
    explain.add_argument("--scale", default="tiny",
                         choices=["tiny", "small", "medium", "large"])
    explain.add_argument("--depth", type=int, default=3)
    explain.add_argument("--no-merge", action="store_true")
    explain.add_argument("--incremental", action="store_true",
                         help="evaluate once with the result cache on and "
                              "show per-node cached/tainted state")
    explain.add_argument("--analyze", action="store_true",
                         help="EXPLAIN ANALYZE: evaluate and annotate the "
                              "plan with measured rows/seconds + q-error")
    explain.set_defaults(handler=_explain)

    fuzz = commands.add_parser(
        "fuzz", parents=[common],
        help="differential fuzzing: random AIGs through the full "
             "configuration grid (see docs/TESTING.md)")
    fuzz.add_argument("--seeds", type=int, default=20, metavar="N",
                      help="number of seeded scenarios to run (default 20)")
    fuzz.add_argument("--start", type=int, default=0, metavar="N",
                      help="first seed (default 0)")
    fuzz.add_argument("--violate-every", type=int, default=5, metavar="N",
                      help="make every Nth scenario violation-injected "
                           "(default 5; 0 = never)")
    fuzz.add_argument("--seed-file", default=None, metavar="FILE",
                      help="re-run the oracle on a saved repro file "
                           "instead of generating scenarios")
    fuzz.add_argument("--shrink", action="store_true",
                      help="minimize any diverging scenario before "
                           "writing its repro file")
    fuzz.add_argument("--out", default="fuzz-repros", metavar="DIR",
                      help="directory for repro artifacts "
                           "(default fuzz-repros/)")
    fuzz.set_defaults(handler=_fuzz)

    serve = commands.add_parser(
        "serve", parents=[common],
        help="run the long-lived multi-tenant evaluation service "
             "(docs/SERVICE.md)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8750,
                       help="listen port (0 = ephemeral; default 8750)")
    serve.add_argument("--scale", default="tiny",
                       choices=["tiny", "small", "medium", "large"],
                       help="dataset scale for the pre-registered "
                            "hospital tenant")
    serve.add_argument("--workers", type=_workers_value, default=1,
                       metavar="N|auto")
    serve.add_argument("--no-merge", action="store_true")
    serve.add_argument("--no-incremental", action="store_true",
                       help="disable the cross-request result cache "
                            "(every request re-executes)")
    serve.add_argument("--max-inflight", type=int, default=8, metavar="N",
                       help="per-tenant concurrent evaluation quota "
                            "(default 8)")
    serve.add_argument("--queue-depth", type=int, default=64, metavar="N",
                       help="per-tenant admission queue beyond the quota; "
                            "overflow gets 429 (default 64)")
    serve.add_argument("--max-tenants", type=int, default=None, metavar="N",
                       help="evict the least-recently-used tenant beyond "
                            "N registered (default: unbounded)")
    serve.add_argument("--tenant-ttl", type=float, default=None,
                       metavar="S",
                       help="evict tenants idle for more than S seconds "
                            "(default: never)")
    serve.add_argument("--ledger", default=None, metavar="FILE",
                       help="append one JSONL run record per evaluation")
    serve.add_argument("--feedback", default=None, metavar="FILE",
                       help="persist the cost-feedback store at FILE")
    serve.set_defaults(handler=_serve)

    info = commands.add_parser("info", parents=[common],
                               help="version and components")
    info.set_defaults(handler=_info)

    args = parser.parse_args(argv)
    from repro.obs.logconfig import configure_logging
    configure_logging(verbose=args.verbose, quiet=args.quiet)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
