"""Pre-processing of AIGs into specialized AIGs (Sections 3.3, 3.4, 4).

* :mod:`repro.compilation.constraint_compile` — XML keys/inclusion
  constraints become synthesized bag/set members with ``unique``/``subset``
  guards, enforced during generation.
* :mod:`repro.compilation.occurrences` — the occurrence tree of a
  non-recursive AIG, plus copy-chain resolution (Section 4's copy
  elimination) and symbolic expansion of synthesized collections; the
  analyses the optimizer's query-dependency-graph construction is built on.
* :mod:`repro.compilation.decompose` — multi-source queries become chains of
  single-source internal states via left-deep plans.
* :mod:`repro.compilation.specialize` — the driver that applies all of the
  above, yielding a specialized AIG.
"""

from repro.compilation.constraint_compile import compile_constraints
from repro.compilation.occurrences import (
    Occurrence,
    OccurrenceTree,
    RootValue,
    TableColumn,
    ConstValue,
    Extraction,
)
from repro.compilation.decompose import decompose_query_sites
from repro.compilation.specialize import specialize

__all__ = [
    "compile_constraints",
    "Occurrence",
    "OccurrenceTree",
    "RootValue",
    "TableColumn",
    "ConstValue",
    "Extraction",
    "decompose_query_sites",
    "specialize",
]
