"""Occurrence analysis: the static instance structure of a non-recursive AIG.

An element type can occur at several positions of the document (``trId``
under both ``treatment`` and ``item``); each position is an
:class:`Occurrence`.  For a non-recursive DTD the occurrence tree is finite,
and it is the skeleton both the query dependency graph and the tagging plan
are built on:

* **Iteration occurrences** (the root, star children, and children whose
  inherited attribute is computed by a query) have one *instance per output
  tuple* of their query; the optimized pipeline materializes one table per
  iteration occurrence, every row carrying ``__id``/``__parent`` path-
  encoding columns.  All other occurrences have exactly one instance per
  instance of their *anchor* — the nearest iteration ancestor-or-self.

* **Copy-chain resolution** (:meth:`OccurrenceTree.resolve_inh_scalar`)
  implements Section 4's copy elimination: a scalar inherited member is
  chased through copy rules (CSRs), across production boundaries, until it
  bottoms out at a query output column (:class:`TableColumn`), the root
  inherited attribute (:class:`RootValue`), or a constant
  (:class:`ConstValue`).  Queries in the optimized pipeline therefore read
  their parameters directly from the *originating* table — copies never
  materialize.

* **Collection expansion** (:meth:`OccurrenceTree.expand_syn_collection`)
  symbolically evaluates a synthesized set/bag member into a union of
  :class:`Extraction`\\ s — "take these columns from the table of that
  iteration occurrence, grouped under this anchor" — which the optimizer
  turns into mediator-side SQL for synthesized attributes and guards.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompilationError
from repro.dtd.analysis import recursive_types
from repro.dtd.model import Choice, Empty, PCDATA, Sequence, Star
from repro.aig.functions import (
    Assign,
    AttrRef,
    CollectChildren,
    Const,
    EmptyCollection,
    QueryFunc,
    SingletonSet,
    UnionExpr,
)
from repro.aig.grammar import AIG
from repro.aig.rules import (
    ChoiceRule,
    EmptyRule,
    PCDataRule,
    SequenceRule,
    StarRule,
)


class Occurrence:
    """One position of an element type in the document skeleton.

    Two orthogonal properties drive the optimized pipeline:

    * ``is_iteration`` — the occurrence *multiplies instances*: the root
      (one instance) and star children (one instance per query tuple).
      Every occurrence's ``anchor`` is its nearest iteration
      ancestor-or-self; an occurrence has exactly one instance per anchor
      instance.
    * ``has_table`` — the occurrence's query output is materialized: star
      children (rows = instances) and query-valued inherited attributes of
      sequence/choice children (rows = the set value's tuples, grouped per
      anchor instance).  Every table row carries ``__parent`` = the ``__id``
      of the owning row in the parent anchor's table (absent when the parent
      anchor is the root).
    """

    __slots__ = ("element_type", "parent", "kind", "path", "children",
                 "is_iteration", "has_table", "anchor")

    def __init__(self, element_type: str, parent: "Occurrence | None",
                 kind: str, has_table: bool):
        self.element_type = element_type
        self.parent = parent
        self.kind = kind                      # 'root' | 'seq' | 'star' | 'choice'
        self.path = (element_type if parent is None
                     else f"{parent.path}/{element_type}")
        self.children: list[Occurrence] = []
        self.is_iteration = kind in ("root", "star")
        self.has_table = has_table
        self.anchor: Occurrence = (self if self.is_iteration
                                   else parent.anchor)  # type: ignore

    def child(self, element_type: str) -> "Occurrence":
        for child in self.children:
            if child.element_type == element_type:
                return child
        raise CompilationError(
            f"occurrence {self.path} has no child {element_type!r}")

    def parent_anchor(self) -> "Occurrence":
        """The iteration occurrence whose rows this table's ``__parent``
        references."""
        assert self.has_table and self.parent is not None
        return self.parent.anchor

    def anchor_chain_to(self, group: "Occurrence") -> list["Occurrence"]:
        """Tables to join from this (tabled) occurrence up to ``group``.

        Returns ``[self, a1, a2, ...]`` where each subsequent element is the
        previous one's parent anchor, stopping when the parent anchor *is*
        ``group`` (exclusive).  Joining ``t_i.__parent = t_{i+1}.__id``
        along the list maps each of self's rows to its ``group`` row (the
        last element's ``__parent``).
        """
        assert self.has_table
        chain: list[Occurrence] = [self]
        current: Occurrence = self
        while True:
            if current.parent is None:
                raise CompilationError(
                    f"{group.path} is not an ancestor of {self.path}")
            up = current.parent.anchor
            if up is group:
                return chain
            if up.parent is None:
                raise CompilationError(
                    f"{group.path} is not an ancestor of {self.path}")
            chain.append(up)
            current = up

    def choice_edges_gating(self) -> list["Occurrence"]:
        """Choice-child occurrences on the path from self (inclusive) up to
        the parent anchor (exclusive) — the branch memberships that gate
        this tabled occurrence's rows within one anchor instance."""
        assert self.parent is not None
        stop = self.parent.anchor
        edges: list[Occurrence] = []
        current: Occurrence = self
        while current is not stop:
            if current.kind == "choice":
                edges.append(current)
            current = current.parent  # type: ignore[assignment]
            if current is None:
                break
        return edges

    def __repr__(self) -> str:
        marker = "*" if self.is_iteration else ("#" if self.has_table else "")
        return f"Occurrence({self.path}{marker})"


# ----------------------------------------------------------------------
# provenance of scalar values
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RootValue:
    """A member of the AIG's global inherited attribute (known at runtime
    start; a constant of the whole evaluation)."""

    member: str


@dataclass(frozen=True)
class TableColumn:
    """Column ``column`` of the table of iteration occurrence ``occurrence``."""

    occurrence: Occurrence
    column: str


@dataclass(frozen=True)
class ConstValue:
    """A literal constant from a rule."""

    value: object


Provenance = RootValue | TableColumn | ConstValue


@dataclass(frozen=True)
class Extraction:
    """One union branch of an expanded collection member.

    Rows come from the table of ``source`` (a tabled occurrence, or the
    anchor of a singleton contribution); ``columns`` maps each target field
    to a provenance that must be either a column of ``source``'s table or a
    root/const value.  ``group`` is the iteration occurrence whose rows the
    result is grouped under (the owner's anchor): each extracted row belongs
    to the ``group`` ancestor row found by following ``__parent`` pointers
    from ``source`` up to ``group``.  ``conditions`` lists choice-branch
    gates ``(choice-production occurrence, branch index)`` that must have
    selected this branch for the rows to exist.
    """

    source: Occurrence
    columns: tuple[tuple[str, Provenance], ...]
    group: Occurrence
    conditions: tuple[tuple["Occurrence", int], ...] = ()


class OccurrenceTree:
    """The occurrence tree of a non-recursive AIG plus its analyses."""

    def __init__(self, aig: AIG):
        if recursive_types(aig.dtd):
            raise CompilationError(
                "occurrence analysis requires a non-recursive DTD; unfold "
                "recursion first (Section 5.5)")
        self.aig = aig
        self.root = self._build(aig.dtd.root, None, "root")
        self.by_path: dict[str, Occurrence] = {}
        self._index(self.root)
        self.iterations: list[Occurrence] = sorted(
            (o for o in self.by_path.values() if o.is_iteration),
            key=lambda o: o.path)
        self.tabled: list[Occurrence] = sorted(
            (o for o in self.by_path.values() if o.has_table),
            key=lambda o: o.path)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self, element_type: str, parent: Occurrence | None,
               kind: str) -> Occurrence:
        has_table = kind == "star" or self._has_query_inh(
            parent, element_type, kind)
        occurrence = Occurrence(element_type, parent, kind, has_table)
        model = self.aig.dtd.production(element_type)
        if isinstance(model, Sequence):
            for item in model.items:
                occurrence.children.append(
                    self._build(item.value, occurrence, "seq"))
        elif isinstance(model, Choice):
            for item in model.items:
                occurrence.children.append(
                    self._build(item.value, occurrence, "choice"))
        elif isinstance(model, Star):
            occurrence.children.append(
                self._build(model.item.value, occurrence, "star"))
        return occurrence

    def _has_query_inh(self, parent: Occurrence | None, element_type: str,
                       kind: str) -> bool:
        """Is this (non-star) child's Inh computed by a query?"""
        if parent is None or kind == "star":
            return False
        rule = self.aig.rule_for(parent.element_type)
        if kind == "seq" and isinstance(rule, SequenceRule):
            return isinstance(rule.inh_for(element_type), QueryFunc)
        if kind == "choice" and isinstance(rule, ChoiceRule):
            return isinstance(rule.branch_for(element_type).inh, QueryFunc)
        return False

    def _index(self, occurrence: Occurrence) -> None:
        if occurrence.path in self.by_path:
            raise CompilationError(
                f"duplicate occurrence path {occurrence.path!r} (repeated "
                f"child types in one production are not supported by the "
                f"optimized pipeline)")
        self.by_path[occurrence.path] = occurrence
        for child in occurrence.children:
            self._index(child)

    # ------------------------------------------------------------------
    # copy-chain resolution (copy elimination)
    # ------------------------------------------------------------------
    def resolve_inh_scalar(self, occurrence: Occurrence,
                           member: str) -> Provenance:
        """Chase a scalar inherited member to its origin."""
        if occurrence.parent is None:
            return RootValue(member)
        if occurrence.is_iteration:
            # Query output column of this star child's own table.
            return TableColumn(occurrence, member)
        parent = occurrence.parent
        rule = self.aig.rule_for(parent.element_type)
        if isinstance(rule, SequenceRule):
            function = rule.inh_for(occurrence.element_type)
        elif isinstance(rule, ChoiceRule):
            function = rule.branch_for(occurrence.element_type).inh
        else:
            raise CompilationError(
                f"no inherited rule path for {occurrence.path}")
        if isinstance(function, QueryFunc):
            raise CompilationError(
                f"Inh({occurrence.element_type}) at {occurrence.path} is "
                f"query-valued and has no scalar members")
        try:
            expression = function.expr(member)
        except Exception:
            return ConstValue(None)  # unassigned member: null
        return self._resolve_expr(parent, expression)

    def _resolve_expr(self, context: Occurrence, expression) -> Provenance:
        if isinstance(expression, Const):
            return ConstValue(expression.value)
        assert isinstance(expression, AttrRef)
        if expression.kind == "inh":
            return self.resolve_inh_scalar(context, expression.member)
        sibling = context.child(expression.element)
        return self.resolve_syn_scalar(sibling, expression.member)

    def resolve_syn_scalar(self, occurrence: Occurrence,
                           member: str) -> Provenance:
        """Chase a scalar synthesized member down to its origin."""
        rule = self.aig.rule_for(occurrence.element_type)
        if isinstance(rule, (PCDataRule, EmptyRule)):
            expression = self._syn_expr(rule.syn, member)
            if isinstance(expression, Const):
                return ConstValue(expression.value)
            assert isinstance(expression, AttrRef) and expression.kind == "inh"
            return self.resolve_inh_scalar(occurrence, expression.member)
        if isinstance(rule, SequenceRule):
            expression = self._syn_expr(rule.syn, member)
            return self._resolve_expr(occurrence, expression)
        raise CompilationError(
            f"scalar Syn({occurrence.element_type}).{member} at "
            f"{occurrence.path} is not resolvable (star/choice scalar "
            f"synthesized members are data-dependent)")

    def _syn_expr(self, assignment: Assign, member: str):
        try:
            return assignment.expr(member)
        except Exception:
            return Const(None)

    # ------------------------------------------------------------------
    # collection expansion
    # ------------------------------------------------------------------
    def expand_inh_collection(self, occurrence: Occurrence,
                              member: str) -> list[Extraction]:
        """Expand a collection-valued inherited member (e.g. Inh(bill).trIdS)."""
        if occurrence.parent is None:
            raise CompilationError(
                "root inherited collections are not supported by the "
                "optimized pipeline")
        if occurrence.has_table:
            # A query-valued inherited set: its tuples are the table rows,
            # one group per anchor instance.
            schema = self.aig.inh_schema(occurrence.element_type)
            fields = schema.collection_fields(member)
            return [Extraction(
                occurrence,
                tuple((f, TableColumn(occurrence, f)) for f in fields),
                occurrence.anchor)]
        parent = occurrence.parent
        rule = self.aig.rule_for(parent.element_type)
        if isinstance(rule, SequenceRule):
            function = rule.inh_for(occurrence.element_type)
        elif isinstance(rule, ChoiceRule):
            function = rule.branch_for(occurrence.element_type).inh
        else:
            raise CompilationError(
                f"no inherited rule path for {occurrence.path}")
        assert isinstance(function, Assign)
        expression = self._syn_expr(function, member)
        return self._expand_expr(parent, expression)

    def expand_syn_collection(self, occurrence: Occurrence,
                              member: str) -> list[Extraction]:
        """Expand a collection-valued synthesized member into extractions."""
        rule = self.aig.rule_for(occurrence.element_type)
        if isinstance(rule, (PCDataRule, EmptyRule)):
            expression = self._syn_expr(rule.syn, member)
            return self._expand_expr(occurrence, expression,
                                     allow_inh=True)
        if isinstance(rule, SequenceRule):
            expression = self._syn_expr(rule.syn, member)
            return self._expand_expr(occurrence, expression)
        if isinstance(rule, StarRule):
            expression = self._syn_expr(rule.syn, member)
            return self._expand_expr(occurrence, expression)
        assert isinstance(rule, ChoiceRule)
        # Each branch contributes, gated by the branch having been chosen
        # (the extraction carries a condition on the selector value).
        from repro.dtd.model import Choice as ChoiceModel
        model = self.aig.dtd.production(occurrence.element_type)
        assert isinstance(model, ChoiceModel)
        alternatives = [item.value for item in model.items]
        extractions: list[Extraction] = []
        for name, branch in rule.branches:
            index = alternatives.index(name) + 1
            expression = self._syn_expr(branch.syn, member)
            for extraction in self._expand_expr(occurrence, expression):
                extractions.append(Extraction(
                    extraction.source, extraction.columns, extraction.group,
                    extraction.conditions + ((occurrence, index),)))
        return extractions

    def _expand_expr(self, context: Occurrence, expression,
                     allow_inh: bool = False) -> list[Extraction]:
        """Expand a collection expression evaluated at ``context``."""
        if isinstance(expression, (Const,)) or expression is None:
            return []
        if isinstance(expression, EmptyCollection):
            return []
        if isinstance(expression, UnionExpr):
            result: list[Extraction] = []
            for argument in expression.args:
                result.extend(self._expand_expr(context, argument, allow_inh))
            return result
        if isinstance(expression, SingletonSet):
            columns = []
            for field_name, item in expression.items:
                provenance = self._resolve_expr(context, item)
                columns.append((field_name, provenance))
            source = self._common_source(columns, context)
            return [Extraction(source, tuple(columns), context.anchor)]
        if isinstance(expression, CollectChildren):
            child = context.child(expression.child)
            inner = self.expand_syn_collection(child, expression.member)
            return [Extraction(e.source, e.columns, context.anchor,
                               e.conditions)
                    for e in inner]
        assert isinstance(expression, AttrRef)
        if expression.kind == "inh":
            # Inh collections referenced in S/epsilon syn rules, or
            # forwarded copies — expand through the inherited side.
            return self.expand_inh_collection(context, expression.member)
        child = context.child(expression.element)
        return self.expand_syn_collection(child, expression.member)

    def _common_source(self, columns, context: Occurrence) -> Occurrence:
        """The iteration occurrence whose table hosts a singleton's scalars."""
        sources = {p.occurrence for _, p in columns
                   if isinstance(p, TableColumn)}
        if not sources:
            return context.anchor
        if len(sources) > 1:
            raise CompilationError(
                f"singleton at {context.path} draws scalars from multiple "
                f"tables: {[s.path for s in sources]}")
        return next(iter(sources))
