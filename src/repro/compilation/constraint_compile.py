"""Constraint compilation (Section 3.3, Fig. 3).

Each key ``C(A.l -> A)`` adds a *bag* member to the synthesized attribute of
every element type that can contain an ``A`` in its subtree: at ``A`` it
holds the ``l`` value (plus any nested ``A``s below), elsewhere it collects
the members of the relevant children; at ``C`` a ``unique`` guard checks it.
Each inclusion constraint ``C(B.lB ⊆ A.lA)`` adds two *set* members (the
``B.lB`` values and the ``A.lA`` values below) and a ``subset`` guard at
``C``.  Evaluation aborts as soon as any guard fails.

The relevance pruning the paper describes as a static simplification
("Syn(patient).B can be rewritten to Syn(bill).B") is applied directly: a
member is only added to types from which the watched type is reachable, and
union right-hand sides mention only children that can actually contribute.

Element types are matched by :func:`repro.dtd.analysis.base_name`, so the
same constraints compile correctly into recursion-unfolded AIGs (where
``treatment`` exists as copies ``treatment#0``, ``treatment#1``, ...).
"""

from __future__ import annotations

from repro.errors import CompilationError
from repro.dtd.analysis import base_name, element_graph, reachable_types
from repro.dtd.model import Choice, Empty, PCDATA, Sequence, Star
from repro.aig.attributes import AttrSchema
from repro.aig.functions import (
    CollectChildren,
    EmptyCollection,
    SingletonSet,
    UnionExpr,
    syn as syn_ref,
)
from repro.aig.grammar import AIG
from repro.aig.guards import SubsetGuard, UniqueGuard
from repro.aig.rules import (
    ChoiceBranch,
    ChoiceRule,
    EmptyRule,
    PCDataRule,
    SequenceRule,
    StarRule,
)
from repro.constraints.model import Constraint, InclusionConstraint, Key


def compile_constraints(aig: AIG) -> AIG:
    """Return a clone of ``aig`` with constraints compiled into guards.

    The clone's constraint list is preserved (for reporting); the new
    synthesized members are reserved names ``__c<i>``/``__c<i>b``.
    """
    compiled = aig.clone()
    for index, constraint in enumerate(aig.constraints):
        if isinstance(constraint, Key):
            _compile_key(compiled, constraint, f"__c{index}")
        else:
            assert isinstance(constraint, InclusionConstraint)
            _compile_inclusion(compiled, constraint, f"__c{index}")
    return compiled


# ----------------------------------------------------------------------
# shared machinery
# ----------------------------------------------------------------------
def _types_matching(aig: AIG, original_name: str) -> set[str]:
    """Element types of the (possibly unfolded) DTD matching a base name."""
    return {t for t in reachable_types(aig.dtd)
            if base_name(t) == original_name}


def _relevant_types(aig: AIG, watched: set[str]) -> set[str]:
    """Types from which some watched type is reachable (inclusive)."""
    graph = element_graph(aig.dtd)
    relevant = set(watched)
    changed = True
    while changed:
        changed = False
        for element_type, successors in graph.items():
            if element_type not in relevant and successors & relevant:
                relevant.add(element_type)
                changed = True
    return relevant & reachable_types(aig.dtd)


def _add_member(aig: AIG, element_type: str, member: str,
                fields: tuple[str, ...], bag: bool) -> None:
    schema = aig.syn_schema(element_type)
    addition = (AttrSchema(bags={member: fields}) if bag
                else AttrSchema(sets={member: fields}))
    aig.syn_schemas[element_type] = schema.merged_with(addition)


def _value_expr(aig: AIG, element_type: str, field_types: list[str],
                constraint: Constraint) -> SingletonSet:
    """``{(f1 value, ..., fk value)}`` — the watched element's own field
    tuple contribution (components named positionally so both sides of an
    inclusion constraint align)."""
    items = []
    for index, field_type in enumerate(field_types):
        field_syn = aig.syn_schema(field_type)
        if not field_syn.is_scalar("val"):
            raise CompilationError(
                f"cannot compile {constraint}: field type {field_type!r} "
                f"has no scalar Syn member 'val'")
        items.append((f"v{index}", syn_ref(field_type, "val")))
    return SingletonSet(tuple(items))


def _add_collection_member(aig: AIG, member: str, watched_base: str,
                           field_bases: tuple[str, ...], bag: bool,
                           constraint: Constraint) -> set[str]:
    """Add ``member`` to every relevant type with collection rules.

    ``watched_base``/``field_bases`` are the constraint's original type
    names; returns the set of relevant types (for guard placement checks).
    """
    watched = _types_matching(aig, watched_base)
    if not watched:
        raise CompilationError(
            f"cannot compile {constraint}: no element type matches "
            f"{watched_base!r}")
    relevant = _relevant_types(aig, watched)
    fields = tuple(f"v{i}" for i in range(len(field_bases)))
    for element_type in sorted(relevant):
        _add_member(aig, element_type, member, fields, bag)
    for element_type in sorted(relevant):
        _extend_rule(aig, element_type, member, watched, field_bases,
                     relevant, constraint)
    return relevant


def _extend_rule(aig: AIG, element_type: str, member: str, watched: set[str],
                 field_bases: tuple[str, ...], relevant: set[str],
                 constraint: Constraint) -> None:
    model = aig.dtd.production(element_type)
    rule = aig.rule_for(element_type)
    contributions = []
    field_types: list[str] | None = None

    if element_type in watched:
        if isinstance(model, Star):
            raise CompilationError(
                f"cannot compile {constraint}: {element_type!r} has a star "
                f"production, so {field_bases} are not unique subelements")
        field_types = [_field_type_of(aig, element_type, base, constraint)
                       for base in field_bases]
        if not isinstance(model, Choice):
            contributions.append(_value_expr(aig, element_type, field_types,
                                             constraint))

    if isinstance(model, Sequence):
        for item in model.items:
            if item.value in relevant:
                contributions.append(syn_ref(item.value, member))
        expr = (UnionExpr(tuple(contributions)) if contributions
                else EmptyCollection())
        assert isinstance(rule, SequenceRule)
        new_rule = SequenceRule(rule.inh, _extend_assign(rule.syn, member,
                                                         expr))
    elif isinstance(model, Star):
        if model.item.value in relevant:
            contributions.append(CollectChildren(model.item.value, member))
        expr = (UnionExpr(tuple(contributions)) if contributions
                else EmptyCollection())
        assert isinstance(rule, StarRule)
        new_rule = StarRule(rule.child_query,
                            _extend_assign(rule.syn, member, expr))
    elif isinstance(model, Choice):
        assert isinstance(rule, ChoiceRule)
        branches = []
        for name, branch in rule.branches:
            branch_contribs = list(contributions)
            if field_types is not None and name in field_types:
                if len(field_types) > 1:
                    raise CompilationError(
                        f"cannot compile {constraint}: composite fields "
                        f"under a choice production are not supported")
                branch_contribs.append(_value_expr(aig, element_type,
                                                   field_types, constraint))
            if name in relevant:
                branch_contribs.append(syn_ref(name, member))
            expr = (UnionExpr(tuple(branch_contribs)) if branch_contribs
                    else EmptyCollection())
            branches.append((name, ChoiceBranch(
                branch.inh, _extend_assign(branch.syn, member, expr))))
        new_rule = ChoiceRule(rule.condition, tuple(branches))
    elif isinstance(model, PCDATA):
        assert isinstance(rule, PCDataRule)
        expr = (UnionExpr(tuple(contributions)) if contributions
                else EmptyCollection())
        new_rule = PCDataRule(rule.text,
                              _extend_assign(rule.syn, member, expr))
    else:
        assert isinstance(model, Empty)
        assert isinstance(rule, EmptyRule)
        expr = (UnionExpr(tuple(contributions)) if contributions
                else EmptyCollection())
        new_rule = EmptyRule(_extend_assign(rule.syn, member, expr))
    aig.rules[element_type] = new_rule


def _extend_assign(assignment, member, expr):
    from repro.aig.functions import Assign
    return Assign(assignment.items + ((member, expr),))


def _field_type_of(aig: AIG, element_type: str, field_base: str,
                   constraint: Constraint) -> str:
    """The concrete child type of ``element_type`` matching ``field_base``."""
    for name in aig.dtd.production(element_type).names():
        if base_name(name) == field_base:
            return name
    raise CompilationError(
        f"cannot compile {constraint}: {element_type!r} has no "
        f"{field_base!r} child")


def _place_guards(aig: AIG, context_base: str, relevant: set[str],
                  make_guard) -> None:
    contexts = _types_matching(aig, context_base)
    for context_type in sorted(contexts):
        if context_type in relevant:
            aig.add_guard(context_type, make_guard(context_type))


# ----------------------------------------------------------------------
# the two constraint forms
# ----------------------------------------------------------------------
def _compile_key(aig: AIG, key: Key, prefix: str) -> None:
    member = f"{prefix}_key"
    relevant = _add_collection_member(aig, member, key.target, key.fields,
                                      bag=True, constraint=key)
    _place_guards(aig, key.context, relevant,
                  lambda ct: UniqueGuard(ct, member, key))


def _compile_inclusion(aig: AIG, ic: InclusionConstraint, prefix: str) -> None:
    source_member = f"{prefix}_src"
    target_member = f"{prefix}_tgt"
    source_relevant = _add_collection_member(
        aig, source_member, ic.source, ic.source_fields, bag=False,
        constraint=ic)
    target_relevant = _add_collection_member(
        aig, target_member, ic.target, ic.target_fields, bag=False,
        constraint=ic)
    # The subset guard needs both members at the context type; a context
    # that can only contain one side holds trivially or vacuously — the
    # guard is placed only where the source side exists.
    contexts = _types_matching(aig, ic.context)
    fields = tuple(f"v{i}" for i in range(len(ic.target_fields)))
    for context_type in sorted(contexts):
        if context_type not in source_relevant:
            continue
        if context_type not in target_relevant:
            _add_member(aig, context_type, target_member, fields, bag=False)
            _extend_rule_empty(aig, context_type, target_member)
        aig.add_guard(context_type,
                      SubsetGuard(context_type, source_member, target_member,
                                  ic))


def _extend_rule_empty(aig: AIG, element_type: str, member: str) -> None:
    """Give ``member`` an always-empty rule at ``element_type``."""
    rule = aig.rule_for(element_type)
    expr = EmptyCollection()
    if isinstance(rule, SequenceRule):
        aig.rules[element_type] = SequenceRule(
            rule.inh, _extend_assign(rule.syn, member, expr))
    elif isinstance(rule, StarRule):
        aig.rules[element_type] = StarRule(
            rule.child_query, _extend_assign(rule.syn, member, expr))
    elif isinstance(rule, PCDataRule):
        aig.rules[element_type] = PCDataRule(
            rule.text, _extend_assign(rule.syn, member, expr))
    elif isinstance(rule, EmptyRule):
        aig.rules[element_type] = EmptyRule(
            _extend_assign(rule.syn, member, expr))
    else:
        assert isinstance(rule, ChoiceRule)
        aig.rules[element_type] = ChoiceRule(rule.condition, tuple(
            (name, ChoiceBranch(branch.inh,
                                _extend_assign(branch.syn, member, expr)))
            for name, branch in rule.branches))
