"""Multi-source query decomposition (Section 3.4).

Every query in an AIG rule that touches more than one data source is
decomposed into a chain of single-source *internal states* — the paper's
``St``, ``St1``, ``St2`` of Fig. 4 — by the left-deep planner of
:mod:`repro.sqlq.planner`.  Each state is a :class:`~repro.sqlq.planner.
PlanStep`: a single-source query reading the previous state's output as a
temp-table input.  States never appear in the generated document.

:func:`decompose_query_sites` enumerates every query site of an AIG and
returns its decomposition; the optimizer applies the same planner to the
set-oriented rewritten queries when it builds the query dependency graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.statistics import StatisticsCatalog
from repro.sqlq.analyze import sources_of
from repro.sqlq.planner import PlanStep, plan_steps
from repro.aig.functions import QueryFunc
from repro.aig.grammar import AIG
from repro.aig.rules import ChoiceRule, SequenceRule, StarRule


@dataclass(frozen=True)
class QuerySite:
    """Where a query appears in an AIG.

    ``kind`` is ``"star"`` (iteration query), ``"inh"`` (query-valued
    inherited attribute of a sequence child), ``"branch"`` (ditto for a
    choice branch), or ``"condition"`` (a choice condition query).
    ``element_type`` owns the production; ``child`` is the affected child
    type (empty for conditions).
    """

    element_type: str
    kind: str
    child: str

    @property
    def name(self) -> str:
        suffix = f".{self.child}" if self.child else ""
        return f"{self.element_type}{suffix}:{self.kind}"


def query_sites(aig: AIG) -> list[tuple[QuerySite, QueryFunc]]:
    """All query sites of an AIG, in deterministic order."""
    sites: list[tuple[QuerySite, QueryFunc]] = []
    for element_type in sorted(aig.dtd.productions):
        try:
            rule = aig.rule_for(element_type)
        except Exception:
            continue
        if isinstance(rule, StarRule):
            sites.append((QuerySite(element_type, "star",
                                    _star_child(aig, element_type)),
                          rule.child_query))
        elif isinstance(rule, SequenceRule):
            for child, function in rule.inh:
                if isinstance(function, QueryFunc):
                    sites.append((QuerySite(element_type, "inh", child),
                                  function))
        elif isinstance(rule, ChoiceRule):
            sites.append((QuerySite(element_type, "condition", ""),
                          rule.condition))
            for child, branch in rule.branches:
                if isinstance(branch.inh, QueryFunc):
                    sites.append((QuerySite(element_type, "branch", child),
                                  branch.inh))
    return sites


def _star_child(aig: AIG, element_type: str) -> str:
    from repro.dtd.model import Star
    model = aig.dtd.production(element_type)
    assert isinstance(model, Star)
    return model.item.value


def decompose_query_sites(
        aig: AIG,
        stats: StatisticsCatalog | None = None
) -> dict[QuerySite, list[PlanStep]]:
    """Decompose every multi-source query site into single-source states.

    Single-source sites map to a one-step plan (unchanged query), so the
    result covers *all* sites and downstream code needs no special cases.
    """
    plans: dict[QuerySite, list[PlanStep]] = {}
    for site, function in query_sites(aig):
        plans[site] = plan_steps(function.query, site.name, stats)
    return plans


def multi_source_sites(aig: AIG) -> list[QuerySite]:
    """Sites whose query touches more than one source (need decomposition)."""
    return [site for site, function in query_sites(aig)
            if len(sources_of(function.query)) > 1]
