"""Specialized-AIG generation: the pre-processing phase (Section 5.1).

``specialize`` turns a user AIG into a specialized AIG automatically — "no
user intervention is needed":

1. constraints are compiled into synthesized members and guards (3.3);
2. multi-source query sites are decomposed into single-source internal
   states (3.4) — recorded as plan metadata consumed by the optimizer;
3. the occurrence analysis (copy elimination, Section 4) is constructed for
   non-recursive DTDs so the optimizer can read parameters from originating
   tables directly.

Recursive AIGs are specialized per recursion unfolding by
:mod:`repro.runtime.recursion`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dtd.analysis import recursive_types
from repro.relational.statistics import StatisticsCatalog
from repro.sqlq.planner import PlanStep
from repro.aig.grammar import AIG
from repro.compilation.constraint_compile import compile_constraints
from repro.compilation.decompose import QuerySite, decompose_query_sites
from repro.compilation.occurrences import OccurrenceTree


@dataclass
class SpecializedAIG:
    """The pre-processing output: grammar + guards + plans + analyses."""

    aig: AIG
    decompositions: dict[QuerySite, list[PlanStep]]
    occurrences: OccurrenceTree | None

    @property
    def guards(self):
        return self.aig.guards

    def plan_for(self, site: QuerySite) -> list[PlanStep]:
        return self.decompositions[site]


def specialize(aig: AIG,
               stats: StatisticsCatalog | None = None,
               tracer=None) -> SpecializedAIG:
    """Pre-process ``aig``: constraint compilation + query decomposition.

    The occurrence analysis is attached for non-recursive DTDs (it is what
    the optimizer builds the query dependency graph from); recursive AIGs
    get it after unfolding.  ``tracer`` (see :mod:`repro.obs`) records one
    span per pre-processing stage.
    """
    from repro.obs.tracer import NULL_TRACER
    tracer = NULL_TRACER if tracer is None else tracer
    with tracer.span("compile-constraints", "compile",
                     constraints=len(aig.constraints)):
        compiled = compile_constraints(aig)
        compiled.validate()
    with tracer.span("decompose", "compile"):
        decompositions = decompose_query_sites(compiled, stats)
    with tracer.span("occurrence-analysis", "compile"):
        occurrences = (OccurrenceTree(compiled)
                       if not recursive_types(compiled.dtd) else None)
    return SpecializedAIG(compiled, decompositions, occurrences)
