"""The AIG σ0 of Fig. 2, expressed through the public builder API.

Semantic attributes, rules, and constraints follow the paper line by line;
the only cosmetic difference is that our star-production child queries
compute the child's *entire* inherited attribute, so Q1 also projects the
report date through (the paper writes that projection as the separate copy
rule ``Inh(patient).date = Inh(report).date``).
"""

from __future__ import annotations

from repro.aig import (
    AIG,
    assign,
    collect,
    inh,
    query,
    singleton,
    syn,
    union,
)
from repro.hospital.schema import hospital_catalog, hospital_dtd

Q1_TEXT = """
select distinct $date as date, p.SSN, p.pname, p.policy
from DB1:patient p, DB1:visitInfo i
where p.SSN = i.SSN and i.date = $date
"""

Q2_TEXT = """
select distinct t.trId, t.tname
from DB1:visitInfo i, DB2:cover c, DB4:treatment t
where i.SSN = $SSN and i.date = $date and t.trId = i.trId
  and c.trId = i.trId and c.policy = $policy
"""

Q3_TEXT = """
select p.trId2 as trId, t.tname
from DB4:procedure p, DB4:treatment t
where p.trId1 = $trId and t.trId = p.trId2
"""

Q4_TEXT = """
select b.trId, b.price
from DB3:billing b
where b.trId in $trIdS
"""


def build_hospital_aig(with_constraints: bool = True) -> AIG:
    """Construct σ0 : {DB1..DB4} -> report DTD."""
    aig = AIG(hospital_dtd(), hospital_catalog(), root_inh=("date",))

    # -- semantic attributes (Fig. 2, top block) -----------------------
    aig.inh("patient", "date", "SSN", "pname", "policy")
    aig.inh("treatments", "date", "SSN", "policy")
    aig.syn("treatments", sets={"trIdS": ("trId",)})
    aig.inh("treatment", "trId", "tname")
    aig.syn("treatment", sets={"trIdS": ("trId",)})
    aig.inh("procedure", "trId")
    aig.syn("procedure", sets={"trIdS": ("trId",)})
    aig.inh("bill", sets={"trIdS": ("trId",)})
    aig.inh("item", "trId", "price")
    # PCDATA types (SSN, pname, trId, tname, price) keep their defaults:
    # Inh = Syn = (val), text = Inh.val.

    # -- semantic rules -------------------------------------------------
    aig.rule("report", inh={"patient": query(Q1_TEXT)})

    aig.rule("patient", inh={
        "SSN": assign(val=inh("SSN")),
        "pname": assign(val=inh("pname")),
        "treatments": assign(date=inh("date"), SSN=inh("SSN"),
                             policy=inh("policy")),
        # Context dependence: the bill subtree needs the trIds collected
        # while deriving the treatments subtree.
        "bill": assign(trIdS=syn("treatments", "trIdS")),
    })

    aig.rule("treatments",
             inh={"treatment": query(Q2_TEXT)},
             syn=assign(trIdS=collect("treatment", "trIdS")))

    aig.rule("treatment",
             inh={
                 "trId": assign(val=inh("trId")),
                 "tname": assign(val=inh("tname")),
                 "procedure": assign(trId=inh("trId")),
             },
             syn=assign(trIdS=union(syn("procedure", "trIdS"),
                                    singleton(trId=syn("trId", "val")))))

    aig.rule("procedure",
             inh={"treatment": query(Q3_TEXT)},
             syn=assign(trIdS=collect("treatment", "trIdS")))

    aig.rule("bill", inh={"item": query(Q4_TEXT)})

    aig.rule("item", inh={
        "trId": assign(val=inh("trId")),
        "price": assign(val=inh("price")),
    })

    # -- XML constraints -------------------------------------------------
    if with_constraints:
        aig.key("patient", "item", "trId")
        aig.inclusion("patient", "treatment", "trId", "item", "trId")

    return aig.validate()
