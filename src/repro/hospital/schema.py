"""Schemas of the four hospital databases and the report DTD (Example 1.1).

    DB1: patient(SSN, pname, policy), visitInfo(SSN, trId, date)
    DB2: cover(policy, trId)
    DB3: billing(trId, price)
    DB4: treatment(trId, tname), procedure(trId1, trId2)
"""

from __future__ import annotations

from repro.dtd import DTD, parse_dtd
from repro.relational import Catalog, DataSource, SourceSchema
from repro.relational.schema import relation

HOSPITAL_DTD_TEXT = """
<!ELEMENT report (patient*)>
<!ELEMENT patient (SSN, pname, treatments, bill)>
<!ELEMENT treatments (treatment*)>
<!ELEMENT treatment (trId, tname, procedure)>
<!ELEMENT procedure (treatment*)>
<!ELEMENT bill (item*)>
<!ELEMENT item (trId, price)>
"""

SOURCE_SCHEMAS = [
    SourceSchema("DB1", (
        relation("patient", "SSN", "pname", "policy", key=("SSN",)),
        relation("visitInfo", "SSN", "trId", "date"),
    )),
    SourceSchema("DB2", (
        relation("cover", "policy", "trId", key=("policy", "trId")),
    )),
    SourceSchema("DB3", (
        relation("billing", "trId", "price", key=("trId",)),
    )),
    SourceSchema("DB4", (
        relation("treatment", "trId", "tname", key=("trId",)),
        relation("procedure", "trId1", "trId2", key=("trId1", "trId2")),
    )),
]


def hospital_dtd() -> DTD:
    """The report DTD of Example 1.1."""
    return parse_dtd(HOSPITAL_DTD_TEXT)


def hospital_catalog() -> Catalog:
    """The catalog ``R`` of the four source schemas."""
    return Catalog(SOURCE_SCHEMAS)


def make_sources(backend: str | dict[str, str] | None = None
                 ) -> dict[str, DataSource]:
    """Fresh, empty instances of DB1..DB4.

    ``backend`` selects the storage engine: ``None`` (sqlite), one
    backend spec for every source (``"file:csv"``), or a mapping of
    source name to spec for mixed federations
    (``{"DB1": "duckdb", "DB3": "file"}``; unmapped sources default
    to sqlite).  Specs are resolved by
    :func:`repro.relational.backends.create_backend`.
    """
    if backend is None or isinstance(backend, str):
        backend = {schema.source: backend for schema in SOURCE_SCHEMAS}
    return {schema.source:
            DataSource(schema, backend=backend.get(schema.source))
            for schema in SOURCE_SCHEMAS}
