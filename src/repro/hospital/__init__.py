"""The paper's running example (Example 1.1): hospital -> insurance reports.

Four relational sources (patient info, insurance coverage, billing, treatment
procedures), the report DTD, the XML constraints, and the AIG σ0 of Fig. 2 —
all built through the public API, so this package doubles as the library's
largest usage example and as the fixture for tests and benchmarks.
"""

from repro.hospital.schema import (
    HOSPITAL_DTD_TEXT,
    hospital_catalog,
    hospital_dtd,
    make_sources,
)
from repro.hospital.aig_def import build_hospital_aig

__all__ = [
    "HOSPITAL_DTD_TEXT",
    "hospital_catalog",
    "hospital_dtd",
    "make_sources",
    "build_hospital_aig",
]
