"""Semantic attributes: schemas and runtime values.

Definition 3.1 associates with every element type two disjoint tuples of
attributes, ``Inh(A)`` and ``Syn(A)``.  Each attribute *member* is either a
tuple of strings (here: a *scalar* member per string component, which loses
no generality and keeps references flat, e.g. ``Inh(patient).SSN``) or a set
of tuples (a *set* member with named components, e.g.
``Syn(treatments).trIdS`` whose tuples have one component ``trId``).
Constraint compilation (Section 3.3) additionally introduces *bag* members —
sets with duplicates.

Runtime values: scalar members hold Python strings/numbers (or ``None`` for
the null produced by unselected choice branches); set and bag members hold
:class:`Rows` — an ordered multiset of tuples with named fields whose
``distinct`` flag implements set- vs bag-union semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SpecError


@dataclass(frozen=True)
class AttrSchema:
    """Schema of one attribute (the ``Inh(A)`` or ``Syn(A)`` record).

    ``scalars`` are string-valued members; ``sets`` and ``bags`` map member
    names to their tuple-component field names.
    """

    scalars: tuple[str, ...] = ()
    sets: dict[str, tuple[str, ...]] = field(default_factory=dict)
    bags: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def __post_init__(self):
        names = list(self.scalars) + list(self.sets) + list(self.bags)
        if len(set(names)) != len(names):
            raise SpecError(f"attribute schema has duplicate members: {names}")

    @property
    def members(self) -> list[str]:
        return list(self.scalars) + list(self.sets) + list(self.bags)

    def is_scalar(self, member: str) -> bool:
        return member in self.scalars

    def is_collection(self, member: str) -> bool:
        return member in self.sets or member in self.bags

    def is_bag(self, member: str) -> bool:
        return member in self.bags

    def collection_fields(self, member: str) -> tuple[str, ...]:
        if member in self.sets:
            return self.sets[member]
        if member in self.bags:
            return self.bags[member]
        raise SpecError(f"{member!r} is not a set/bag member")

    def has(self, member: str) -> bool:
        return member in self.members

    def merged_with(self, other: "AttrSchema") -> "AttrSchema":
        """Schema union (used when constraint compilation adds members)."""
        overlap = set(self.members) & set(other.members)
        if overlap:
            raise SpecError(f"attribute member collision: {sorted(overlap)}")
        return AttrSchema(self.scalars + other.scalars,
                          {**self.sets, **other.sets},
                          {**self.bags, **other.bags})


#: The empty attribute record (kept shared; AttrSchema is frozen).
EMPTY_SCHEMA = AttrSchema()


class Rows:
    """An ordered collection of named-field tuples (a set or bag value)."""

    __slots__ = ("fields", "rows", "distinct")

    def __init__(self, fields: tuple[str, ...], rows: list[tuple],
                 distinct: bool = True):
        self.fields = tuple(fields)
        self.distinct = distinct
        if distinct:
            seen: set[tuple] = set()
            unique: list[tuple] = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            self.rows = unique
        else:
            self.rows = list(rows)

    @classmethod
    def empty(cls, fields: tuple[str, ...], distinct: bool = True) -> "Rows":
        return cls(fields, [], distinct)

    def union(self, other: "Rows") -> "Rows":
        """Set union when distinct, bag (duplicate-preserving) union else."""
        if self.fields != other.fields:
            raise SpecError(
                f"cannot union rows with fields {self.fields} and "
                f"{other.fields}")
        return Rows(self.fields, self.rows + other.rows,
                    self.distinct and other.distinct)

    def values(self, field_name: str) -> list:
        index = self.fields.index(field_name)
        return [row[index] for row in self.rows]

    def has_duplicates(self) -> bool:
        return len(self.rows) != len(set(self.rows))

    def as_set(self) -> set[tuple]:
        return set(self.rows)

    def sorted(self) -> "Rows":
        """Canonical ordering (tuples compared as strings, None first)."""
        def sort_key(row: tuple):
            return tuple((value is not None, str(value)) for value in row)
        ordered = Rows(self.fields, [], self.distinct)
        ordered.rows = sorted(self.rows, key=sort_key)
        return ordered

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Rows):
            return False
        if self.fields != other.fields:
            return False
        if self.distinct != other.distinct:
            return False
        if self.distinct:
            return self.as_set() == other.as_set()
        return sorted(map(repr, self.rows)) == sorted(map(repr, other.rows))

    def __repr__(self) -> str:
        kind = "set" if self.distinct else "bag"
        return f"Rows<{kind}>({self.fields}, {len(self.rows)} rows)"


#: Runtime value of an attribute record: member name -> scalar or Rows.
AttrValue = dict


def empty_value(schema: AttrSchema) -> AttrValue:
    """A null-initialized value of the given schema."""
    value: AttrValue = {member: None for member in schema.scalars}
    for member, fields in schema.sets.items():
        value[member] = Rows.empty(fields, distinct=True)
    for member, fields in schema.bags.items():
        value[member] = Rows.empty(fields, distinct=False)
    return value


def check_value(schema: AttrSchema, value: AttrValue, where: str) -> None:
    """Validate a runtime value against its schema (used in tests/debug)."""
    for member in schema.scalars:
        if member not in value:
            raise SpecError(f"{where}: missing scalar member {member!r}")
        if isinstance(value[member], Rows):
            raise SpecError(f"{where}: scalar member {member!r} holds rows")
    for member in list(schema.sets) + list(schema.bags):
        if member not in value:
            raise SpecError(f"{where}: missing collection member {member!r}")
        if not isinstance(value[member], Rows):
            raise SpecError(
                f"{where}: collection member {member!r} holds a scalar")
