"""Static type-compatibility checking (Section 3.1).

"Type compatibility is required: the type of Syn(A) must match that of g …
Similarly for Inh(Bi) and f; in particular, Inh(Bi) is of a set type iff f is
defined with a query.  It is easy to verify that type compatibility can be
checked statically in linear time."  This module is that check: one pass over
every rule, each expression visited once.
"""

from __future__ import annotations

from repro.errors import TypeCompatibilityError
from repro.dtd.analysis import reachable_types
from repro.dtd.model import Choice, Empty, PCDATA, Sequence, Star
from repro.aig.attributes import AttrSchema
from repro.aig.functions import (
    Assign,
    AttrRef,
    CollectChildren,
    Const,
    EmptyCollection,
    QueryFunc,
    SingletonSet,
    UnionExpr,
)
from repro.aig.rules import (
    ChoiceRule,
    EmptyRule,
    PCDataRule,
    SequenceRule,
    StarRule,
)
from repro.sqlq.analyze import scalar_params, set_params


class _Context:
    """What a rule's expressions may reference, and with what types."""

    def __init__(self, aig, owner: str, siblings: list[str],
                 star_child: str | None = None,
                 allow_inh_in_syn: bool = False):
        self.aig = aig
        self.owner = owner
        self.siblings = siblings
        self.star_child = star_child
        self.allow_inh_in_syn = allow_inh_in_syn

    def fail(self, message: str):
        raise TypeCompatibilityError(f"in rule for {self.owner!r}: {message}")

    def schema_of(self, ref: AttrRef, in_syn_rule: bool) -> AttrSchema:
        if ref.kind == "inh":
            if in_syn_rule and not self.allow_inh_in_syn:
                self.fail(
                    f"{ref} used in a synthesized rule: Syn(A) may only be "
                    f"defined from Inh(A) in S/epsilon productions")
            return self.aig.inh_schema(self.owner)
        allowed = set(self.siblings)
        if self.star_child:
            allowed.add(self.star_child)
        if ref.element not in allowed:
            self.fail(f"{ref} references an element that is not a child of "
                      f"this production")
        return self.aig.syn_schema(ref.element)


def _check_scalar(expr, context: _Context, in_syn: bool) -> None:
    if isinstance(expr, Const):
        return
    if not isinstance(expr, AttrRef):
        context.fail(f"expected a scalar expression, got {expr}")
    schema = context.schema_of(expr, in_syn)
    if not schema.has(expr.member):
        context.fail(f"{expr}: member not declared")
    if not schema.is_scalar(expr.member):
        context.fail(f"{expr}: a collection member used as a scalar")


def _check_collection(expr, fields: tuple[str, ...], context: _Context,
                      in_syn: bool) -> None:
    if isinstance(expr, AttrRef):
        schema = context.schema_of(expr, in_syn)
        if not schema.has(expr.member):
            context.fail(f"{expr}: member not declared")
        if not schema.is_collection(expr.member):
            context.fail(f"{expr}: a scalar member used as a collection")
        if schema.collection_fields(expr.member) != fields:
            context.fail(
                f"{expr}: fields {schema.collection_fields(expr.member)} "
                f"do not match target fields {fields}")
    elif isinstance(expr, SingletonSet):
        if tuple(name for name, _ in expr.items) != fields:
            context.fail(
                f"singleton fields {[n for n, _ in expr.items]} do not "
                f"match target fields {fields}")
        for _, item in expr.items:
            _check_scalar(item, context, in_syn)
    elif isinstance(expr, CollectChildren):
        if context.star_child is None:
            context.fail("⊔ (collect) is only valid in a star production")
        if expr.child != context.star_child:
            context.fail(f"collect references {expr.child!r}, but the star "
                         f"child is {context.star_child!r}")
        child_schema = context.aig.syn_schema(expr.child)
        if not child_schema.is_collection(expr.member):
            context.fail(f"collect target Syn({expr.child}).{expr.member} "
                         f"must be a collection member")
        if child_schema.collection_fields(expr.member) != fields:
            context.fail(f"collect fields mismatch for {expr}")
    elif isinstance(expr, EmptyCollection):
        return
    elif isinstance(expr, UnionExpr):
        for arg in expr.args:
            _check_collection(arg, fields, context, in_syn)
    else:
        context.fail(f"expected a collection expression, got {expr}")


def _check_assign_to(assignment: Assign, target: AttrSchema,
                     context: _Context, in_syn: bool, what: str) -> None:
    for member, expr in assignment.items:
        if not target.has(member):
            context.fail(f"{what} assigns undeclared member {member!r}")
        if target.is_scalar(member):
            _check_scalar(expr, context, in_syn)
        else:
            _check_collection(expr, target.collection_fields(member),
                              context, in_syn)


def _check_query_params(function: QueryFunc, context: _Context) -> None:
    for param in sorted(scalar_params(function.query)):
        ref = function.binding_for(param)
        schema = context.schema_of(ref, in_syn_rule=False)
        if not schema.has(ref.member):
            context.fail(f"query parameter ${param} binds to undeclared "
                         f"{ref}")
        if not schema.is_scalar(ref.member):
            context.fail(f"query parameter ${param} binds to collection "
                         f"{ref}; use it as a set parameter instead")
    for param in sorted(set_params(function.query)):
        ref = function.binding_for(param)
        schema = context.schema_of(ref, in_syn_rule=False)
        if not schema.has(ref.member):
            context.fail(f"set parameter ${param} binds to undeclared {ref}")
        if not schema.is_collection(ref.member):
            context.fail(f"set parameter ${param} binds to scalar {ref}")


def _check_inh_function(function, child: str, context: _Context) -> None:
    target = context.aig.inh_schema(child)
    if isinstance(function, Assign):
        _check_assign_to(function, target, context, in_syn=False,
                         what=f"Inh({child})")
        return
    assert isinstance(function, QueryFunc)
    _check_query_params(function, context)
    collections = list(target.sets) + list(target.bags)
    if len(collections) != 1 or target.scalars:
        context.fail(
            f"Inh({child}) is computed by a query, so it must consist of "
            f"exactly one set member (Definition 3.1: Inh(Bi) is of a set "
            f"type iff f is defined with a query)")
    fields = target.collection_fields(collections[0])
    outputs = tuple(function.query.output_names)
    if set(outputs) != set(fields):
        context.fail(
            f"Inh({child}): query outputs {outputs} do not match set member "
            f"fields {fields}")


def _check_star_query(function: QueryFunc, child: str,
                      context: _Context) -> None:
    _check_query_params(function, context)
    target = context.aig.inh_schema(child)
    if target.sets or target.bags:
        context.fail(
            f"star child {child!r} carries one tuple per iteration; its "
            f"inherited attribute must be all scalars")
    outputs = set(function.query.output_names)
    expected = set(target.scalars)
    if outputs != expected:
        context.fail(
            f"Inh({child}): query outputs {sorted(outputs)} do not match "
            f"inherited scalars {sorted(expected)}")


def typecheck_aig(aig) -> None:
    """Check every reachable production's rule; linear in the AIG size."""
    for element_type in sorted(reachable_types(aig.dtd)):
        model = aig.dtd.production(element_type)
        rule = aig.rule_for(element_type)
        syn_target = aig.syn_schema(element_type)

        if isinstance(model, PCDATA):
            assert isinstance(rule, PCDataRule)
            context = _Context(aig, element_type, [], allow_inh_in_syn=True)
            _check_scalar(rule.text.expr("__text__"), context, in_syn=False)
            _check_assign_to(rule.syn, syn_target, context, in_syn=True,
                             what=f"Syn({element_type})")
        elif isinstance(model, Empty):
            assert isinstance(rule, EmptyRule)
            context = _Context(aig, element_type, [], allow_inh_in_syn=True)
            _check_assign_to(rule.syn, syn_target, context, in_syn=True,
                             what=f"Syn({element_type})")
        elif isinstance(model, Star):
            assert isinstance(rule, StarRule)
            child = model.item.value
            context = _Context(aig, element_type, [], star_child=child)
            _check_star_query(rule.child_query, child, context)
            _check_assign_to(rule.syn, syn_target, context, in_syn=True,
                             what=f"Syn({element_type})")
        elif isinstance(model, Choice):
            assert isinstance(rule, ChoiceRule)
            _check_query_params(rule.condition,
                                _Context(aig, element_type, []))
            if len(rule.condition.query.output_names) != 1:
                raise TypeCompatibilityError(
                    f"in rule for {element_type!r}: the condition query must "
                    f"output exactly one column")
            for name, branch in rule.branches:
                # Per case (3), each branch may use only Inh(A) for fi and
                # only Syn(Bi) for gi.
                branch_context = _Context(aig, element_type, [name])
                _check_inh_function(branch.inh, name, branch_context)
                _check_assign_to(branch.syn, syn_target, branch_context,
                                 in_syn=True, what=f"Syn({element_type})")
        else:
            assert isinstance(model, Sequence)
            assert isinstance(rule, SequenceRule)
            children = [item.value for item in model.items]
            if len(set(children)) != len(children):
                _check_repeated_children(aig, element_type, rule, children)
            context = _Context(aig, element_type, children)
            for name, function in rule.inh:
                _check_inh_function(function, name, context)
            _check_assign_to(rule.syn, syn_target, context, in_syn=True,
                             what=f"Syn({element_type})")


def _check_repeated_children(aig, element_type, rule, children) -> None:
    """A sequence with repeated child types shares one rule per type and
    must not reference the repeated type's Syn (which occurrence?)."""
    from collections import Counter
    from repro.aig.functions import func_refs
    repeated = {name for name, count in Counter(children).items() if count > 1}
    for name, function in rule.inh:
        for ref in func_refs(function):
            if ref.kind == "syn" and ref.element in repeated:
                raise TypeCompatibilityError(
                    f"in rule for {element_type!r}: Syn({ref.element}) is "
                    f"ambiguous because {ref.element!r} occurs more than "
                    f"once in the production")
    for _, expr in rule.syn.items:
        from repro.aig.functions import scalar_refs
        for ref in scalar_refs(expr):
            if ref.kind == "syn" and ref.element in repeated:
                raise TypeCompatibilityError(
                    f"in rule for {element_type!r}: Syn({ref.element}) is "
                    f"ambiguous because {ref.element!r} occurs more than "
                    f"once in the production")
