"""Guards: boolean conditions on synthesized attributes (Section 3.3).

A specialized AIG attaches guards to element types.  When a node of that type
finishes evaluating (its synthesized attribute is known), each guard is
checked; a false guard aborts the whole evaluation — "it is terminated
without success".  Two guard forms compile from the two constraint forms:

* ``unique(Syn(C).m)``  — the bag member ``m`` contains no duplicates (keys);
* ``subset(Syn(C).m1, Syn(C).m2)`` — set member ``m1 ⊆ m2`` (inclusions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aig.attributes import AttrValue, Rows
from repro.constraints.model import Constraint


@dataclass(frozen=True)
class UniqueGuard:
    """``unique(Syn(element).member)`` — true iff the bag has no duplicates."""

    element: str
    member: str
    constraint: Constraint

    def holds(self, syn_value: AttrValue) -> bool:
        rows = syn_value[self.member]
        assert isinstance(rows, Rows)
        return not rows.has_duplicates()

    def __str__(self) -> str:
        return f"unique(Syn({self.element}).{self.member})"


@dataclass(frozen=True)
class SubsetGuard:
    """``subset(Syn(element).left, Syn(element).right)`` — left ⊆ right."""

    element: str
    left: str
    right: str
    constraint: Constraint

    def holds(self, syn_value: AttrValue) -> bool:
        left_rows = syn_value[self.left]
        right_rows = syn_value[self.right]
        assert isinstance(left_rows, Rows) and isinstance(right_rows, Rows)
        return left_rows.as_set() <= right_rows.as_set()

    def __str__(self) -> str:
        return (f"subset(Syn({self.element}).{self.left}, "
                f"Syn({self.element}).{self.right})")


Guard = UniqueGuard | SubsetGuard
