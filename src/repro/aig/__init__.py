"""Attribute Integration Grammars — the paper's core contribution.

Public surface::

    from repro.aig import (
        AIG,                      # the grammar σ : R -> D
        assign, query,            # rule right-hand-side builders
        inh, syn,                 # attribute references
        union, singleton, collect, EmptyCollection,
        ChoiceBranch,
        ConceptualEvaluator,      # Section 3.2 semantics
    )
"""

from repro.aig.attributes import AttrSchema, AttrValue, Rows, empty_value
from repro.aig.functions import (
    Assign,
    AttrRef,
    CollectChildren,
    Const,
    EmptyCollection,
    QueryFunc,
    SingletonSet,
    UnionExpr,
    assign,
    collect,
    inh,
    query,
    singleton,
    syn,
    union,
)
from repro.aig.grammar import AIG
from repro.aig.guards import Guard, SubsetGuard, UniqueGuard
from repro.aig.rules import (
    ChoiceBranch,
    ChoiceRule,
    EmptyRule,
    PCDataRule,
    Rule,
    SequenceRule,
    StarRule,
)
from repro.aig.evaluator import ConceptualEvaluator, EvaluationStats

__all__ = [
    "AIG",
    "AttrSchema",
    "AttrValue",
    "Rows",
    "empty_value",
    "Assign",
    "AttrRef",
    "CollectChildren",
    "Const",
    "EmptyCollection",
    "QueryFunc",
    "SingletonSet",
    "UnionExpr",
    "assign",
    "collect",
    "inh",
    "query",
    "singleton",
    "syn",
    "union",
    "Guard",
    "SubsetGuard",
    "UniqueGuard",
    "ChoiceBranch",
    "ChoiceRule",
    "EmptyRule",
    "PCDataRule",
    "Rule",
    "SequenceRule",
    "StarRule",
    "ConceptualEvaluator",
    "EvaluationStats",
]
