"""The AIG itself: ``σ : R -> D`` (Definition 3.1) plus a builder API.

An :class:`AIG` bundles a (simplified) DTD, a catalog of relational source
schemas, attribute schemas for every element type, one semantic rule per
production, and the XML constraints.  Specialized AIGs (the output of
pre-processing, Sections 3.3–3.4) are the same class with extra synthesized
members, guards, and possibly internal-state element types marked for
erasure.

Typical construction::

    aig = AIG(dtd, catalog, root_inh=("date",))
    aig.inh("patient", "date", "SSN", "pname", "policy")
    aig.syn("treatments", sets={"trIdS": ("trId",)})
    aig.rule("report", inh={"patient": query(Q1_TEXT)})
    aig.rule("patient", inh={
        "SSN": assign(val=inh("SSN")),
        ...
        "bill": assign(trIdS=syn("treatments", "trIdS")),
    })
    aig.key("patient", "item", "trId")
    aig.validate()
"""

from __future__ import annotations

import copy
from dataclasses import replace as dataclass_replace

from repro.errors import SpecError
from repro.dtd.model import (
    DTD,
    Choice,
    Empty,
    Name,
    PCDATA,
    Sequence,
    Star,
)
from repro.dtd.normalize import is_simple_dtd
from repro.relational.schema import Catalog
from repro.sqlq.analyze import resolve_unqualified, scalar_params, set_params
from repro.aig.attributes import AttrSchema, EMPTY_SCHEMA
from repro.aig.dependency import check_acyclic
from repro.aig.functions import (
    Assign,
    AttrRef,
    InhFunc,
    QueryFunc,
    SynFunc,
    assign,
    inh as inh_ref,
)
from repro.aig.guards import Guard
from repro.aig.rules import (
    ChoiceBranch,
    ChoiceRule,
    EmptyRule,
    PCDataRule,
    Rule,
    SequenceRule,
    StarRule,
)
from repro.constraints.model import Constraint, InclusionConstraint, Key


class AIG:
    """An attribute integration grammar from a catalog ``R`` to a DTD ``D``."""

    def __init__(self, dtd: DTD, catalog: Catalog,
                 root_inh: tuple[str, ...] = ()):
        if not is_simple_dtd(dtd):
            raise SpecError(
                "AIGs require a simplified DTD; run normalize_dtd() first")
        self.dtd = dtd
        self.catalog = catalog
        self.inh_schemas: dict[str, AttrSchema] = {}
        self.syn_schemas: dict[str, AttrSchema] = {}
        self.rules: dict[str, Rule] = {}
        self.constraints: list[Constraint] = []
        self.guards: dict[str, list[Guard]] = {}
        #: element types that are internal computation states (Section 3.4);
        #: erased from the final document by the tagging phase.
        self.internal_states: set[str] = set()
        self.inh_schemas[dtd.root] = AttrSchema(scalars=tuple(root_inh))
        self._apply_pcdata_defaults()

    # ------------------------------------------------------------------
    # defaults
    # ------------------------------------------------------------------
    def _apply_pcdata_defaults(self) -> None:
        """Every PCDATA element type defaults to Inh=(val), Syn=(val) with
        rule ``Inh(S).val = Inh(X).val; Syn(X).val = Inh(X).val`` — the
        paper's ``trId -> S`` pattern."""
        for element_type, model in self.dtd.productions.items():
            if isinstance(model, PCDATA):
                self.inh_schemas.setdefault(
                    element_type, AttrSchema(scalars=("val",)))
                self.syn_schemas.setdefault(
                    element_type, AttrSchema(scalars=("val",)))
                self.rules.setdefault(element_type, PCDataRule(
                    text=assign(__text__=inh_ref("val")),
                    syn=assign(val=inh_ref("val"))))

    # ------------------------------------------------------------------
    # attribute declarations
    # ------------------------------------------------------------------
    def inh(self, element_type: str, *scalars: str,
            sets: dict[str, tuple[str, ...]] | None = None,
            bags: dict[str, tuple[str, ...]] | None = None) -> "AIG":
        self._check_type(element_type)
        self.inh_schemas[element_type] = AttrSchema(
            tuple(scalars), dict(sets or {}), dict(bags or {}))
        return self

    def syn(self, element_type: str, *scalars: str,
            sets: dict[str, tuple[str, ...]] | None = None,
            bags: dict[str, tuple[str, ...]] | None = None) -> "AIG":
        self._check_type(element_type)
        self.syn_schemas[element_type] = AttrSchema(
            tuple(scalars), dict(sets or {}), dict(bags or {}))
        return self

    def inh_schema(self, element_type: str) -> AttrSchema:
        return self.inh_schemas.get(element_type, EMPTY_SCHEMA)

    def syn_schema(self, element_type: str) -> AttrSchema:
        return self.syn_schemas.get(element_type, EMPTY_SCHEMA)

    def _check_type(self, element_type: str) -> None:
        if element_type not in self.dtd:
            raise SpecError(f"unknown element type {element_type!r}")

    # ------------------------------------------------------------------
    # rule declarations
    # ------------------------------------------------------------------
    def rule(self, element_type: str,
             inh: dict[str, InhFunc] | None = None,
             syn: SynFunc | None = None,
             text: Assign | AttrRef | None = None,
             condition: QueryFunc | None = None,
             branches: dict[str, ChoiceBranch] | None = None) -> "AIG":
        """Declare ``rule(p)`` for the production of ``element_type``.

        The accepted keyword arguments depend on the production form; see the
        class docstring and :mod:`repro.aig.rules`.
        """
        self._check_type(element_type)
        model = self.dtd.production(element_type)
        syn = syn if syn is not None else assign()
        if isinstance(model, PCDATA):
            if text is None:
                raise SpecError(f"{element_type!r} -> S requires text=...")
            if isinstance(text, AttrRef):
                text = assign(__text__=text)
            built: Rule = PCDataRule(text=text, syn=syn)
        elif isinstance(model, Empty):
            if inh or text or condition or branches:
                raise SpecError(f"{element_type!r} -> EMPTY takes only syn=")
            built = EmptyRule(syn=syn)
        elif isinstance(model, Star):
            if not inh or list(inh) != [model.item.value]:
                raise SpecError(
                    f"{element_type!r} -> {model.item.value}* requires "
                    f"inh={{{model.item.value!r}: query(...)}}")
            child_function = inh[model.item.value]
            if not isinstance(child_function, QueryFunc):
                raise SpecError(
                    f"{element_type!r}: the star child's inherited attribute "
                    f"must be computed by a query (iteration)")
            built = StarRule(
                child_query=self._resolve(child_function, element_type),
                syn=syn)
        elif isinstance(model, Choice):
            if condition is None or branches is None:
                raise SpecError(
                    f"{element_type!r} is a choice production and requires "
                    f"condition= and branches=")
            alternatives = [item.value for item in model.items]
            for name in branches:
                if name not in alternatives:
                    raise SpecError(
                        f"{element_type!r}: branch {name!r} is not an "
                        f"alternative of the production")
            resolved_branches = tuple(
                (name, ChoiceBranch(
                    inh=self._resolve(branch.inh, element_type),
                    syn=branch.syn))
                for name, branch in branches.items())
            built = ChoiceRule(
                condition=self._resolve(condition, element_type),
                branches=resolved_branches)
        else:
            assert isinstance(model, Sequence)
            children = [item.value for item in model.items]
            inh = inh or {}
            for name in inh:
                if name not in children:
                    raise SpecError(
                        f"{element_type!r}: {name!r} is not a child of the "
                        f"production")
            resolved = tuple((name, self._resolve(function, element_type))
                             for name, function in inh.items())
            built = SequenceRule(inh=resolved, syn=syn)
        self.rules[element_type] = built
        return self

    def _resolve(self, function: InhFunc, owner: str) -> InhFunc:
        """Resolve unqualified columns and validate parameter bindings."""
        if not isinstance(function, QueryFunc):
            return function
        set_fields: dict[str, tuple[str, ...]] = {}
        parameters = (scalar_params(function.query)
                      | set_params(function.query))
        for param in parameters:
            ref = function.binding_for(param)
            schema = (self.inh_schema(owner) if ref.kind == "inh"
                      else self.syn_schema(ref.element))
            if schema.is_collection(ref.member):
                set_fields[param] = schema.collection_fields(ref.member)
        resolved = resolve_unqualified(function.query, self.catalog,
                                       set_param_fields=set_fields)
        return QueryFunc(resolved, function.bindings)

    def rule_for(self, element_type: str) -> Rule:
        """The rule of a production, defaulting where the paper's examples
        omit one (EMPTY productions and un-annotated sequences/stars have no
        sensible default query, so those still raise)."""
        if element_type in self.rules:
            return self.rules[element_type]
        model = self.dtd.production(element_type)
        if isinstance(model, Empty):
            return EmptyRule()
        if isinstance(model, Sequence):
            return SequenceRule(inh=())
        raise SpecError(f"no rule declared for element type {element_type!r}")

    # ------------------------------------------------------------------
    # constraints
    # ------------------------------------------------------------------
    def key(self, context: str, target: str, fields) -> "AIG":
        """Declare a key ``context(target.fields -> target)``; ``fields`` is
        a field name or a tuple of them (composite key)."""
        constraint = Key(context, target, fields)
        constraint.validate_against(self.dtd)
        self.constraints.append(constraint)
        return self

    def inclusion(self, context: str, source: str, source_fields,
                  target: str, target_fields) -> "AIG":
        """Declare ``context(source.source_fields ⊆ target.target_fields)``;
        either side may be a single field name or a tuple (composite)."""
        constraint = InclusionConstraint(context, source, source_fields,
                                         target, target_fields)
        constraint.validate_against(self.dtd)
        self.constraints.append(constraint)
        return self

    def add_guard(self, element_type: str, guard: Guard) -> "AIG":
        self._check_type(element_type)
        self.guards.setdefault(element_type, []).append(guard)
        return self

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> "AIG":
        """Full static validation: every production has a (possibly default)
        rule, dependency relations are acyclic, and all rules type-check.
        Returns self for chaining; raises :class:`SpecError` subclasses."""
        from repro.aig.typecheck import typecheck_aig
        from repro.dtd.analysis import reachable_types
        for element_type in sorted(reachable_types(self.dtd)):
            rule = self.rule_for(element_type)  # raises if missing
            model = self.dtd.production(element_type)
            if isinstance(model, Sequence) and isinstance(rule, SequenceRule):
                children = [item.value for item in model.items]
                check_acyclic(rule, children, element_type)
        typecheck_aig(self)
        return self

    def evaluation_order(self, element_type: str) -> list[str]:
        """Topological child order for a sequence production."""
        model = self.dtd.production(element_type)
        assert isinstance(model, Sequence)
        rule = self.rule_for(element_type)
        assert isinstance(rule, SequenceRule)
        children = [item.value for item in model.items]
        return check_acyclic(rule, children, element_type)

    # ------------------------------------------------------------------
    # copying (specialization transforms work on copies)
    # ------------------------------------------------------------------
    def clone(self) -> "AIG":
        duplicate = AIG.__new__(AIG)
        duplicate.dtd = self.dtd
        duplicate.catalog = self.catalog
        duplicate.inh_schemas = dict(self.inh_schemas)
        duplicate.syn_schemas = dict(self.syn_schemas)
        duplicate.rules = dict(self.rules)
        duplicate.constraints = list(self.constraints)
        duplicate.guards = {k: list(v) for k, v in self.guards.items()}
        duplicate.internal_states = set(self.internal_states)
        return duplicate

    def __repr__(self) -> str:
        return (f"AIG(root={self.dtd.root!r}, "
                f"{len(self.dtd.productions)} element types, "
                f"{len(self.constraints)} constraints)")
