"""Right-hand sides of semantic rules: the ``f`` and ``g`` functions.

Section 3.1 defines two function families::

    g(Inh(A), Syn(B~))   ::= (x1,...,xk) | {x} | ⊔x | x1 ∪ ... ∪ xk
    f(Inh(A), Syn(B~i))  ::= (x1,...,xk) | Q(x1,...,xk)

Here both are expression trees over :class:`AttrRef` leaves:

* :class:`AttrRef` — a member of ``Inh(A)`` (``inh("date")``) or of a
  sibling's/child's synthesized attribute (``syn("treatments", "trIdS")``).
* :class:`Const` — a string constant.
* :class:`TupleExpr` — the tuple constructor ``(x1,...,xk)``; builds a
  record assigning each target member one source expression.
* :class:`SingletonSet` — ``{x}``: a one-tuple set.
* :class:`UnionExpr` — ``x1 ∪ ... ∪ xk`` over collection-valued operands.
* :class:`CollectChildren` — ``⊔ x``: union of a member over all children of
  a star production.
* :class:`EmptyCollection` — the empty set/bag (used by compiled constraint
  rules at leaf element types).
* :class:`QueryFunc` — ``Q(x1,...,xk)``: an SQL query whose ``$params`` are
  bound from attribute members.

Rules pair these with target members; see :mod:`repro.aig.rules`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SpecError
from repro.sqlq.ast import Query
from repro.sqlq.parser import parse_query


# ----------------------------------------------------------------------
# leaves
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AttrRef:
    """A reference to an attribute member.

    ``kind`` is ``"inh"`` (a member of the production head's inherited
    attribute) or ``"syn"`` (a member of ``Syn(element)`` for a child /
    sibling element type ``element``).
    """

    kind: str
    element: str | None
    member: str

    def __post_init__(self):
        if self.kind not in ("inh", "syn"):
            raise SpecError(f"AttrRef kind must be inh/syn, got {self.kind!r}")
        if self.kind == "syn" and not self.element:
            raise SpecError("syn reference requires an element type")

    def __str__(self) -> str:
        if self.kind == "inh":
            return f"Inh.{self.member}"
        return f"Syn({self.element}).{self.member}"


def inh(member: str) -> AttrRef:
    """``Inh(A).member`` of the production head ``A``."""
    return AttrRef("inh", None, member)


def syn(element: str, member: str) -> AttrRef:
    """``Syn(element).member`` of a child or sibling element type."""
    return AttrRef("syn", element, member)


@dataclass(frozen=True)
class Const:
    """A constant scalar."""

    value: object

    def __str__(self) -> str:
        return repr(self.value)


ScalarExpr = AttrRef | Const


# ----------------------------------------------------------------------
# collection expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SingletonSet:
    """``{(x1,...,xk)}`` — a one-tuple collection.

    ``items`` maps the collection's component fields to scalar expressions.
    """

    items: tuple[tuple[str, ScalarExpr], ...]

    def __str__(self) -> str:
        inner = ", ".join(f"{name}={expr}" for name, expr in self.items)
        return "{(" + inner + ")}"


def singleton(**items: ScalarExpr) -> SingletonSet:
    return SingletonSet(tuple(items.items()))


@dataclass(frozen=True)
class CollectChildren:
    """``⊔`` over the children of a star production: union of
    ``Syn(child).member`` across all created children."""

    child: str
    member: str

    def __str__(self) -> str:
        return f"⊔ Syn({self.child}).{self.member}"


def collect(child: str, member: str) -> CollectChildren:
    return CollectChildren(child, member)


@dataclass(frozen=True)
class EmptyCollection:
    """The empty set/bag with the target member's fields."""

    def __str__(self) -> str:
        return "{}"


@dataclass(frozen=True)
class UnionExpr:
    """``x1 ∪ ... ∪ xk`` (or bag union, decided by the target member)."""

    args: tuple["CollectionExpr", ...]

    def __post_init__(self):
        if not self.args:
            raise SpecError("union requires at least one operand")

    def __str__(self) -> str:
        return " ∪ ".join(str(a) for a in self.args)


CollectionExpr = (AttrRef | SingletonSet | CollectChildren | EmptyCollection
                  | UnionExpr)


def union(*args: CollectionExpr) -> UnionExpr:
    return UnionExpr(tuple(args))


#: Any rule right-hand-side expression assignable to a member.
MemberExpr = ScalarExpr | CollectionExpr


# ----------------------------------------------------------------------
# assignments and queries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Assign:
    """The tuple constructor ``f/g = (x1,...,xk)`` as a named record:
    one expression per target member."""

    items: tuple[tuple[str, MemberExpr], ...]

    def members(self) -> list[str]:
        return [name for name, _ in self.items]

    def expr(self, member: str) -> MemberExpr:
        for name, expression in self.items:
            if name == member:
                return expression
        raise SpecError(f"assignment has no member {member!r}")

    def __str__(self) -> str:
        return ", ".join(f".{name} = {expr}" for name, expr in self.items)


def assign(**items: MemberExpr) -> Assign:
    """``assign(val=inh("SSN"), trIdS=syn("treatments", "trIdS"))``."""
    return Assign(tuple(items.items()))


@dataclass(frozen=True)
class QueryFunc:
    """``Q(x1,...,xk)`` — a (possibly multi-source) SQL query.

    ``$name`` parameters default to ``Inh(A).name``; ``bindings`` overrides
    that, e.g. ``{"trIdS": syn("treatments", "trIdS")}`` for set-valued
    inputs or sibling synthesized attributes.  The query's output columns are
    matched positionally to the target members (for a tuple-valued
    assignment) or to the target set member's component fields (for an
    iteration / set-valued assignment).
    """

    query: Query
    bindings: tuple[tuple[str, AttrRef], ...] = ()

    def binding_for(self, param: str) -> AttrRef:
        for name, ref in self.bindings:
            if name == param:
                return ref
        return inh(param)

    def __str__(self) -> str:
        return f"Q[{self.query}]"


def query(text_or_ast: str | Query, **bindings: AttrRef) -> QueryFunc:
    """Build a :class:`QueryFunc` from query text (or an AST)."""
    parsed = (parse_query(text_or_ast) if isinstance(text_or_ast, str)
              else text_or_ast)
    return QueryFunc(parsed, tuple(bindings.items()))


InhFunc = Assign | QueryFunc
SynFunc = Assign


def scalar_refs(expression: MemberExpr) -> list[AttrRef]:
    """All attribute references inside an expression (for dependencies)."""
    if isinstance(expression, AttrRef):
        return [expression]
    if isinstance(expression, Const):
        return []
    if isinstance(expression, SingletonSet):
        return [ref for _, item in expression.items
                for ref in scalar_refs(item)]
    if isinstance(expression, CollectChildren):
        return []
    if isinstance(expression, EmptyCollection):
        return []
    if isinstance(expression, UnionExpr):
        return [ref for arg in expression.args for ref in scalar_refs(arg)]
    raise SpecError(f"unknown expression {expression!r}")


def func_refs(function: InhFunc | SynFunc) -> list[AttrRef]:
    """All attribute references a rule right-hand side consumes."""
    if isinstance(function, Assign):
        return [ref for _, expression in function.items
                for ref in scalar_refs(expression)]
    assert isinstance(function, QueryFunc)
    from repro.sqlq.analyze import scalar_params, set_params
    names = scalar_params(function.query) | set_params(function.query)
    return [function.binding_for(name) for name in sorted(names)]
