"""Conceptual evaluation of AIGs (Section 3.2).

The evaluator realizes the paper's semantics directly: a depth-first,
one-sweep derivation in which each node's inherited attribute is computed
first, then its subtree, and finally its synthesized attribute.  Children of
a sequence production are evaluated in a topological order of the
production's dependency relation (the paper's reverse-topological stack push
order); star productions create one child per tuple of the iteration query;
choice productions run the condition query to select a branch; guards (from
constraint compilation) are checked as soon as the relevant synthesized
attribute is known, aborting the derivation on violation.

The recursion here *is* the paper's evaluation stack.  Multi-source queries
execute directly over a :class:`~repro.relational.source.Federation` — the
conceptual semantics does not care where tables live.  (The optimized
pipeline in :mod:`repro.runtime` never does this; it runs decomposed
single-source queries at the individual sources, which is what the
cross-path equality tests exercise.)

Determinism: the children of a star node appear in the canonical order of
their inherited tuples (sorted, None-first), and both evaluation paths use
the same ordering, so generated documents are comparable node-for-node.
"""

from __future__ import annotations

from repro.errors import EvaluationAborted, EvaluationError
from repro.dtd.model import Choice, Empty, PCDATA, Sequence, Star
from repro.relational.source import DataSource, Federation
from repro.xmlmodel.node import XMLElement, XMLText
from repro.aig.attributes import AttrSchema, AttrValue, Rows, empty_value
from repro.aig.functions import (
    Assign,
    AttrRef,
    CollectChildren,
    Const,
    EmptyCollection,
    QueryFunc,
    SingletonSet,
    UnionExpr,
)
from repro.aig.grammar import AIG
from repro.aig.rules import (
    ChoiceRule,
    EmptyRule,
    PCDataRule,
    SequenceRule,
    StarRule,
)
from repro.sqlq.analyze import scalar_params, set_params
from repro.sqlq.render import render_sqlite


class EvaluationStats:
    """Counters collected during one evaluation (used by tests/benches)."""

    def __init__(self):
        self.queries_executed = 0
        self.nodes_created = 0
        self.guards_checked = 0
        self.max_depth = 0

    def __repr__(self) -> str:
        return (f"EvaluationStats(queries={self.queries_executed}, "
                f"nodes={self.nodes_created}, guards={self.guards_checked})")


class ConceptualEvaluator:
    """Evaluates ``σ(I, v)``: given the sources and a root inherited value,
    produces an XML tree conforming to the AIG's DTD."""

    def __init__(self, aig: AIG, sources: list[DataSource],
                 max_depth: int = 500, violation_mode: str = "abort"):
        aig.validate()
        if violation_mode not in ("abort", "report"):
            raise EvaluationError(
                f"violation_mode must be 'abort' or 'report', "
                f"got {violation_mode!r}")
        self.aig = aig
        self.federation = Federation(sources)
        self.max_depth = max_depth
        #: "abort" (the paper's semantics: a failed guard terminates the
        #: derivation without success) or "report" (finish the document and
        #: collect the violated constraints in ``violations`` — the hook the
        #: paper leaves for constraint repairing [19]).
        self.violation_mode = violation_mode
        self.violations: list = []
        self.stats = EvaluationStats()
        self._temp_counter = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def evaluate(self, root_inh: dict | None = None) -> XMLElement:
        """Run the derivation; returns the document root.

        Raises :class:`EvaluationAborted` when a guard fails (constraint
        violation) and :class:`EvaluationError` on other failures.
        """
        self.stats = EvaluationStats()
        self.violations = []
        root_type = self.aig.dtd.root
        root_schema = self.aig.inh_schema(root_type)
        inh_value = empty_value(root_schema)
        inh_value.update(root_inh or {})
        missing = [m for m in root_schema.scalars if inh_value.get(m) is None]
        if missing:
            raise EvaluationError(
                f"root inherited attribute is missing members {missing}")
        root = XMLElement(root_type)
        self.stats.nodes_created += 1
        self._eval_node(root, root_type, inh_value, depth=0)
        self._erase_internal_states(root)
        return root

    # ------------------------------------------------------------------
    # node evaluation (one production application)
    # ------------------------------------------------------------------
    def _eval_node(self, node: XMLElement, element_type: str,
                   inh_value: AttrValue, depth: int) -> AttrValue:
        if depth > self.max_depth:
            raise EvaluationError(
                f"derivation exceeded maximum depth {self.max_depth} at "
                f"{element_type!r} (runaway recursive DTD?)")
        self.stats.max_depth = max(self.stats.max_depth, depth)
        model = self.aig.dtd.production(element_type)
        rule = self.aig.rule_for(element_type)

        if isinstance(model, PCDATA):
            assert isinstance(rule, PCDataRule)
            value = self._eval_scalar(rule.text.expr("__text__"),
                                      inh_value, {})
            node.append(XMLText("" if value is None else str(value)))
            self.stats.nodes_created += 1
            syn_value = self._eval_assign(
                rule.syn, self.aig.syn_schema(element_type), inh_value, {},
                None, allow_inh=True)

        elif isinstance(model, Empty):
            assert isinstance(rule, EmptyRule)
            syn_value = self._eval_assign(
                rule.syn, self.aig.syn_schema(element_type), inh_value, {},
                None, allow_inh=True)

        elif isinstance(model, Star):
            assert isinstance(rule, StarRule)
            child_type = model.item.value
            rows = self._run_query(rule.child_query, inh_value, {})
            child_schema = self.aig.inh_schema(child_type)
            star_syn: list[AttrValue] = []
            for row in rows:
                child_inh = self._tuple_to_inh(rows.fields, row, child_schema)
                child = XMLElement(child_type)
                node.append(child)
                self.stats.nodes_created += 1
                star_syn.append(self._eval_node(child, child_type, child_inh,
                                                depth + 1))
            syn_value = self._eval_assign(
                rule.syn, self.aig.syn_schema(element_type), inh_value, {},
                star_syn)

        elif isinstance(model, Choice):
            assert isinstance(rule, ChoiceRule)
            syn_value = self._eval_choice(node, element_type, model, rule,
                                          inh_value, depth)

        else:
            assert isinstance(model, Sequence) and isinstance(rule,
                                                              SequenceRule)
            children = [item.value for item in model.items]
            nodes: dict[str, XMLElement] = {}
            for child_type in children:
                child = XMLElement(child_type)
                node.append(child)
                self.stats.nodes_created += 1
                nodes[child_type] = child
            child_syn: dict[str, AttrValue] = {}
            for child_type in self.aig.evaluation_order(element_type):
                child_inh = self._eval_inh(rule.inh_for(child_type),
                                           child_type, inh_value, child_syn)
                child_syn[child_type] = self._eval_node(
                    nodes[child_type], child_type, child_inh, depth + 1)
            syn_value = self._eval_assign(
                rule.syn, self.aig.syn_schema(element_type), inh_value,
                child_syn, None)

        self._check_guards(element_type, syn_value, node)
        return syn_value

    def _eval_choice(self, node, element_type, model, rule, inh_value,
                     depth) -> AttrValue:
        alternatives = rule.selector_targets(
            [item.value for item in model.items])
        rows = self._run_query(rule.condition, inh_value, {})
        if not len(rows):
            raise EvaluationError(
                f"condition query of {element_type!r} returned no value")
        selector = rows.rows[0][0]
        try:
            index = int(selector)
        except (TypeError, ValueError):
            raise EvaluationError(
                f"condition query of {element_type!r} returned non-integer "
                f"{selector!r}") from None
        if not 1 <= index <= len(alternatives):
            raise EvaluationError(
                f"condition query of {element_type!r} returned {index}, "
                f"outside [1, {len(alternatives)}]")
        chosen = alternatives[index - 1]
        if chosen is None:
            from repro.errors import RecursionTruncated
            raise RecursionTruncated(
                f"condition query of {element_type!r} selected an "
                f"alternative truncated by recursion unfolding; increase "
                f"the unfold depth")
        branch = rule.branch_for(chosen)
        child_inh = self._eval_inh(branch.inh, chosen, inh_value, {})
        child = XMLElement(chosen)
        node.append(child)
        self.stats.nodes_created += 1
        child_syn = self._eval_node(child, chosen, child_inh, depth + 1)
        return self._eval_assign(
            branch.syn, self.aig.syn_schema(element_type), inh_value,
            {chosen: child_syn}, None)

    # ------------------------------------------------------------------
    # rule right-hand sides
    # ------------------------------------------------------------------
    def _eval_inh(self, function, child_type: str, inh_value: AttrValue,
                  sibling_syn: dict[str, AttrValue]) -> AttrValue:
        target_schema = self.aig.inh_schema(child_type)
        if isinstance(function, Assign):
            return self._eval_assign(function, target_schema, inh_value,
                                     sibling_syn, None)
        assert isinstance(function, QueryFunc)
        rows = self._run_query(function, inh_value, sibling_syn)
        # Type checking guarantees a single collection member.
        member = (list(target_schema.sets) + list(target_schema.bags))[0]
        value = empty_value(target_schema)
        fields = target_schema.collection_fields(member)
        reordered = self._reorder(rows, fields,
                                  distinct=not target_schema.is_bag(member))
        value[member] = reordered
        return value

    def _tuple_to_inh(self, fields, row, schema: AttrSchema) -> AttrValue:
        value = empty_value(schema)
        for field_name, field_value in zip(fields, row):
            value[field_name] = field_value
        return value

    def _eval_assign(self, assignment: Assign, target: AttrSchema,
                     inh_value: AttrValue,
                     child_syn: dict[str, AttrValue],
                     star_syn: list[AttrValue] | None,
                     allow_inh: bool = False) -> AttrValue:
        result = empty_value(target)
        for member, expression in assignment.items:
            if target.is_scalar(member):
                result[member] = self._eval_scalar(expression, inh_value,
                                                   child_syn)
            else:
                fields = target.collection_fields(member)
                distinct = not target.is_bag(member)
                result[member] = self._eval_collection(
                    expression, fields, distinct, inh_value, child_syn,
                    star_syn)
        return result

    def _eval_scalar(self, expression, inh_value: AttrValue,
                     child_syn: dict[str, AttrValue]):
        if isinstance(expression, Const):
            return expression.value
        assert isinstance(expression, AttrRef)
        if expression.kind == "inh":
            return inh_value.get(expression.member)
        source = child_syn.get(expression.element)
        if source is None:
            return None
        return source.get(expression.member)

    def _eval_collection(self, expression, fields, distinct,
                         inh_value, child_syn, star_syn) -> Rows:
        if isinstance(expression, AttrRef):
            if expression.kind == "inh":
                rows = inh_value.get(expression.member)
            else:
                source = child_syn.get(expression.element)
                rows = None if source is None else source.get(expression.member)
            if rows is None:
                return Rows.empty(fields, distinct)
            assert isinstance(rows, Rows)
            return Rows(fields, rows.rows, distinct)
        if isinstance(expression, SingletonSet):
            row = tuple(self._eval_scalar(item, inh_value, child_syn)
                        for _, item in expression.items)
            return Rows(fields, [row], distinct)
        if isinstance(expression, CollectChildren):
            collected: list[tuple] = []
            for child_value in star_syn or []:
                rows = child_value.get(expression.member)
                if isinstance(rows, Rows):
                    collected.extend(rows.rows)
            return Rows(fields, collected, distinct)
        if isinstance(expression, EmptyCollection):
            return Rows.empty(fields, distinct)
        assert isinstance(expression, UnionExpr)
        combined: list[tuple] = []
        for argument in expression.args:
            part = self._eval_collection(argument, fields, distinct,
                                         inh_value, child_syn, star_syn)
            combined.extend(part.rows)
        return Rows(fields, combined, distinct)

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def _run_query(self, function: QueryFunc, inh_value: AttrValue,
                   sibling_syn: dict[str, AttrValue]) -> Rows:
        """Execute a (possibly multi-source) query on the federation."""
        scalar_values: dict[str, object] = {}
        bindings: dict[str, str] = {}
        for param in sorted(scalar_params(function.query)):
            ref = function.binding_for(param)
            scalar_values[param] = self._lookup(ref, inh_value, sibling_syn)
        for param in sorted(set_params(function.query)):
            ref = function.binding_for(param)
            rows = self._lookup(ref, inh_value, sibling_syn)
            if not isinstance(rows, Rows):
                raise EvaluationError(
                    f"set parameter ${param} is bound to a scalar value")
            self._temp_counter += 1
            table = f"__param_{self._temp_counter}"
            self.federation.create_temp_table(list(rows.fields), rows.rows,
                                              table)
            bindings[f"${param}"] = table
        sql, parameters = render_sqlite(function.query, scalar_values,
                                        bindings, qualify_sources=True)
        result = self.federation.execute(sql, tuple(parameters))
        self.stats.queries_executed += 1
        return Rows(tuple(result.columns), result.rows,
                    distinct=False).sorted()

    def _lookup(self, ref: AttrRef, inh_value: AttrValue,
                sibling_syn: dict[str, AttrValue]):
        if ref.kind == "inh":
            return inh_value.get(ref.member)
        source = sibling_syn.get(ref.element)
        if source is None:
            raise EvaluationError(
                f"{ref} referenced before {ref.element!r} was evaluated "
                f"(dependency order violation)")
        return source.get(ref.member)

    def _reorder(self, rows: Rows, fields: tuple[str, ...],
                 distinct: bool) -> Rows:
        """Reorder query-output columns to the target member's field order."""
        indexes = [rows.fields.index(f) for f in fields]
        return Rows(fields, [tuple(row[i] for i in indexes)
                             for row in rows.rows], distinct)

    # ------------------------------------------------------------------
    # guards and internal states
    # ------------------------------------------------------------------
    def _check_guards(self, element_type: str, syn_value: AttrValue,
                      node: XMLElement) -> None:
        for guard in self.aig.guards.get(element_type, []):
            self.stats.guards_checked += 1
            if not guard.holds(syn_value):
                if self.violation_mode == "abort":
                    raise EvaluationAborted([guard.constraint])
                self.violations.append(guard.constraint)

    def _erase_internal_states(self, root: XMLElement) -> None:
        """Remove internal-state nodes (Section 3.4) from the result."""
        if not self.aig.internal_states:
            return
        changed = True
        while changed:
            changed = False
            for node in list(root.iter()):
                for child in list(node.children):
                    if (isinstance(child, XMLElement)
                            and child.tag in self.aig.internal_states):
                        node.replace_with_children(child)
                        changed = True
