"""Semantic rules ``rule(p)`` for the five production forms (Section 3.1).

Each production ``p = A -> α`` carries one rule object:

* ``A -> S``           : :class:`PCDataRule` — text from ``f(Inh(A))``,
  ``Syn(A) = g(Inh(A))``.
* ``A -> epsilon``     : :class:`EmptyRule` — ``Syn(A) = g(Inh(A))``.
* ``A -> B1,...,Bn``   : :class:`SequenceRule` — per-child ``Inh(Bi) =
  fi(Inh(A), Syn(B~i))``, ``Syn(A) = g(Syn(B~))``.
* ``A -> B1+...+Bn``   : :class:`ChoiceRule` — a condition query selects the
  branch; per-branch ``fi``/``gi``.
* ``A -> B*``          : :class:`StarRule` — ``Inh(B) <- Q(Inh(A))`` creates
  one child per output tuple; ``Syn(A)`` collects children (``⊔``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SpecError
from repro.aig.functions import Assign, InhFunc, QueryFunc, SynFunc, assign


#: The empty synthesized-attribute assignment (no members computed).
NO_SYN: SynFunc = assign()


@dataclass(frozen=True)
class PCDataRule:
    """``A -> S``: ``text`` computes the PCDATA (a single scalar expression
    wrapped in an Assign with the reserved member ``__text__``)."""

    text: Assign
    syn: SynFunc = NO_SYN

    def __post_init__(self):
        if self.text.members() != ["__text__"]:
            raise SpecError("PCDataRule.text must assign exactly __text__")


@dataclass(frozen=True)
class EmptyRule:
    """``A -> epsilon``: only a synthesized attribute may be computed."""

    syn: SynFunc = NO_SYN


@dataclass(frozen=True)
class SequenceRule:
    """``A -> B1,...,Bn``: one inherited function per child type."""

    inh: tuple[tuple[str, InhFunc], ...]
    syn: SynFunc = NO_SYN

    def inh_for(self, child: str) -> InhFunc:
        for name, function in self.inh:
            if name == child:
                return function
        return assign()

    def children_with_rules(self) -> list[str]:
        return [name for name, _ in self.inh]


@dataclass(frozen=True)
class ChoiceBranch:
    """Rules applied when a particular alternative is selected."""

    inh: InhFunc = field(default_factory=assign)
    syn: SynFunc = NO_SYN


@dataclass(frozen=True)
class ChoiceRule:
    """``A -> B1+...+Bn``: ``condition`` is the query ``Qc(Inh(A))`` whose
    first output value (an integer in ``[1, n]``) selects the branch.

    Branches are keyed by child element type.  ``selector_names`` maps
    selector values to alternative names; when empty, the production's own
    alternative order is used.  Recursion unfolding sets it to the
    *original* production's order (with ``None`` for truncated
    alternatives), so the condition query's values keep their meaning in
    every unfolded copy.
    """

    condition: QueryFunc
    branches: tuple[tuple[str, ChoiceBranch], ...]
    selector_names: tuple = ()

    def branch_for(self, child: str) -> ChoiceBranch:
        for name, branch in self.branches:
            if name == child:
                return branch
        return ChoiceBranch()

    def selector_targets(self, production_alternatives: list[str]) -> list:
        """Alternative name per selector value (None = truncated)."""
        if self.selector_names:
            return list(self.selector_names)
        return list(production_alternatives)


@dataclass(frozen=True)
class StarRule:
    """``A -> B*``: ``child_query`` computes ``Inh(B)`` — one child per
    output tuple.  ``syn`` may use :class:`~repro.aig.functions.
    CollectChildren` to gather the children's synthesized members."""

    child_query: QueryFunc
    syn: SynFunc = NO_SYN


Rule = PCDataRule | EmptyRule | SequenceRule | ChoiceRule | StarRule
