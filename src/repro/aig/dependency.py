"""Per-production dependency relations (Definition 3.1).

Within a production ``A -> B1,...,Bn``, child ``B`` *depends on* ``B'`` iff
``Inh(B)`` is defined using ``Syn(B')``.  The AIG requires the transitive
closure of this relation to be acyclic for every production, which guarantees
a topological evaluation order for the children.
"""

from __future__ import annotations

from repro.errors import CyclicDependencyError
from repro.aig.functions import func_refs
from repro.aig.rules import SequenceRule


def sequence_dependencies(rule: SequenceRule,
                          children: list[str]) -> dict[str, set[str]]:
    """Direct dependency edges: child -> set of siblings it depends on."""
    child_set = set(children)
    graph: dict[str, set[str]] = {child: set() for child in children}
    for child in children:
        function = rule.inh_for(child)
        for ref in func_refs(function):
            if ref.kind == "syn" and ref.element in child_set \
                    and ref.element != child:
                graph[child].add(ref.element)
    return graph


def topological_order(graph: dict[str, set[str]], children: list[str],
                      production_name: str) -> list[str]:
    """Order children so each follows everything it depends on.

    Ties are broken by production order, so evaluation is deterministic.
    Raises :class:`CyclicDependencyError` if the relation is cyclic.
    """
    position = {child: index for index, child in enumerate(children)}
    remaining = set(children)
    ordered: list[str] = []
    while remaining:
        ready = [child for child in remaining
                 if not (graph[child] & remaining)]
        if not ready:
            cycle = sorted(remaining, key=position.get)
            raise CyclicDependencyError(
                f"production {production_name!r}: cyclic dependency among "
                f"children {cycle}")
        chosen = min(ready, key=position.get)
        ordered.append(chosen)
        remaining.discard(chosen)
    return ordered


def check_acyclic(rule: SequenceRule, children: list[str],
                  production_name: str) -> list[str]:
    """Validate acyclicity and return the evaluation order."""
    graph = sequence_dependencies(rule, children)
    return topological_order(graph, children, production_name)
