"""Seeded primitive-value generators shared by the dataset builders.

The hospital generator (:mod:`repro.datagen.generator`) targets the paper's
Table 1 cardinalities; the fuzz generator (:mod:`repro.fuzz.generator`)
needs the same kind of deterministic, cross-process-stable raw material —
identifier pools, layered DAGs, stable seeding — for *arbitrary* schemas.
Both draw from here.
"""

from __future__ import annotations

import random
import zlib


def stable_rng(*parts) -> random.Random:
    """A ``random.Random`` seeded stably across processes.

    ``str.__hash__`` is randomized per process, so seeds derived from
    strings must go through a stable digest (the hospital generator learned
    this the hard way — see ``generate()``).
    """
    text = ":".join(str(part) for part in parts)
    return random.Random(zlib.crc32(text.encode("utf-8")))


def value_pool(prefix: str, count: int) -> list[str]:
    """``count`` distinct, sortable identifiers: ``x000, x001, ...``."""
    width = max(3, len(str(max(count - 1, 0))))
    return [f"{prefix}{i:0{width}d}" for i in range(count)]


def layered_dag(nodes: list[str], rng: random.Random,
                layers: int = 3, mean_degree: float = 1.5
                ) -> list[tuple[str, str]]:
    """Edges of a layered DAG over ``nodes`` (guaranteed acyclic).

    Nodes are split into ``layers`` consecutive groups; edges only go from
    one layer to the next, so any recursion driven by the edge relation
    terminates within ``layers`` steps.  Used for recursive star
    productions (the hospital ``procedure`` pattern, generalized).
    """
    if len(nodes) < 2 or layers < 2:
        return []
    layers = min(layers, len(nodes))
    size = max(1, len(nodes) // layers)
    groups = [nodes[i * size:(i + 1) * size] for i in range(layers - 1)]
    groups.append(nodes[(layers - 1) * size:])
    groups = [group for group in groups if group]
    edges: set[tuple[str, str]] = set()
    for above, below in zip(groups, groups[1:]):
        for node in above:
            degree = int(mean_degree)
            if rng.random() < mean_degree - degree:
                degree += 1
            degree = min(degree, len(below))
            for child in rng.sample(below, degree):
                edges.add((node, child))
    return sorted(edges)


def rows_per_key(keys: list[str], rng: random.Random,
                 min_rows: int = 0, max_rows: int = 3) -> list[str]:
    """For each key, repeat it 0..n times — the parent-key column of a
    star-production backing table (some parents childless, some fanned
    out)."""
    column: list[str] = []
    for key in keys:
        column.extend([key] * rng.randint(min_rows, max_rows))
    return column
