"""CSV export / bulk load — the paper's data pipeline, reproduced.

Section 6: "we used the ToXgene data generator to produce XML data that
conforms to a canonical relational DTD; we then used a simple parser that
reads the XML data and generates a comma-separated file (which can be
bulk-loaded into the RDBMS)".  This module is that last leg: a generated
:class:`~repro.datagen.generator.HospitalDataset` is written as one CSV per
relation and bulk-loaded back into the sources, so datasets can be persisted,
inspected, and shared between runs.
"""

from __future__ import annotations

import csv
import pathlib

from repro.errors import SpecError
from repro.relational import DataSource
from repro.datagen.generator import HospitalDataset, SCALES, Scale

#: relation name -> (source, dataset attribute)
RELATIONS = {
    "patient": ("DB1", "patient"),
    "visitInfo": ("DB1", "visit_info"),
    "cover": ("DB2", "cover"),
    "billing": ("DB3", "billing"),
    "treatment": ("DB4", "treatment"),
    "procedure": ("DB4", "procedure"),
}


def export_csv(dataset: HospitalDataset, directory: str | pathlib.Path
               ) -> dict[str, pathlib.Path]:
    """Write one ``<relation>.csv`` per table; returns the paths."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: dict[str, pathlib.Path] = {}
    for relation_name, (_, attribute) in RELATIONS.items():
        path = directory / f"{relation_name}.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerows(getattr(dataset, attribute))
        paths[relation_name] = path
    return paths


def import_csv(directory: str | pathlib.Path,
               scale: str | Scale = "small") -> HospitalDataset:
    """Read a dataset back from ``export_csv`` output.

    ``scale`` only labels the dataset; the actual cardinalities come from
    the files (they are validated to be self-consistent).
    """
    directory = pathlib.Path(directory)
    if isinstance(scale, str):
        scale = SCALES[scale]
    dataset = HospitalDataset(scale)
    for relation_name, (_, attribute) in RELATIONS.items():
        path = directory / f"{relation_name}.csv"
        if not path.exists():
            raise SpecError(f"missing CSV file {path}")
        with open(path, newline="") as handle:
            rows = [tuple(row) for row in csv.reader(handle)]
        setattr(dataset, attribute, rows)
    _validate(dataset)
    return dataset


def bulk_load_csv(directory: str | pathlib.Path,
                  sources: dict[str, DataSource]) -> None:
    """Bulk-load exported CSVs straight into the four sources."""
    directory = pathlib.Path(directory)
    for relation_name, (source_name, _) in RELATIONS.items():
        path = directory / f"{relation_name}.csv"
        if not path.exists():
            raise SpecError(f"missing CSV file {path}")
        with open(path, newline="") as handle:
            rows = [tuple(row) for row in csv.reader(handle)]
        sources[source_name].load_rows(relation_name, rows)


def _validate(dataset: HospitalDataset) -> None:
    """Cheap referential sanity of an imported dataset."""
    treatment_ids = {row[0] for row in dataset.treatment}
    for left, right in dataset.procedure:
        if left not in treatment_ids or right not in treatment_ids:
            raise SpecError(
                f"procedure edge ({left}, {right}) references an unknown "
                f"treatment")
    for row in dataset.visit_info:
        if len(row) != 3:
            raise SpecError(f"malformed visitInfo row {row}")
