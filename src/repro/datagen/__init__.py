"""Synthetic hospital data — the ToXgene substitute (Section 6).

The paper generated its datasets with ToXgene and bulk-loaded them into DB2;
here a seeded generator produces the six relations at the exact Table 1
cardinalities.  The ``procedure`` relation is a layered DAG calibrated so
its self-join growth tracks the paper's reported figures for the Large
dataset (3-way ≈ 4055, 4-way ≈ 6837 — see ``EXPERIMENTS.md`` for measured
values), which is what drives the intermediate-result growth across
DTD-unfolding levels in Figure 10.
"""

from repro.datagen.generator import (
    HospitalDataset,
    Scale,
    SCALES,
    generate,
    procedure_path_counts,
)
from repro.datagen.loader import load_dataset, make_loaded_sources
from repro.datagen.csvio import bulk_load_csv, export_csv, import_csv
from repro.datagen.values import (
    layered_dag,
    rows_per_key,
    stable_rng,
    value_pool,
)

__all__ = [
    "layered_dag",
    "rows_per_key",
    "stable_rng",
    "value_pool",
    "bulk_load_csv",
    "export_csv",
    "import_csv",
    "HospitalDataset",
    "Scale",
    "SCALES",
    "generate",
    "procedure_path_counts",
    "load_dataset",
    "make_loaded_sources",
]
