"""Bulk loading of generated datasets into the four hospital sources."""

from __future__ import annotations

from repro.relational import DataSource, SourceSchema
from repro.relational.schema import relation
from repro.datagen.generator import HospitalDataset, generate
from repro.hospital.schema import make_sources


def load_dataset(dataset: HospitalDataset,
                 sources: dict[str, DataSource],
                 enforce_billing_key: bool = True) -> None:
    """Load a generated dataset into (fresh) hospital sources.

    With ``enforce_billing_key=False`` the DB3 source is replaced by a
    variant whose ``billing`` table has no primary key, so key-violation
    datasets can be loaded (the XML key is then caught by the AIG guards,
    not by the storage engine).
    """
    if not enforce_billing_key:
        previous = sources.get("DB3")
        spec = previous.backend.spec if previous is not None else None
        if previous is not None:
            previous.close()
        sources["DB3"] = DataSource(
            SourceSchema("DB3", (relation("billing", "trId", "price"),)),
            backend=spec)
    sources["DB1"].load_rows("patient", dataset.patient)
    sources["DB1"].load_rows("visitInfo", dataset.visit_info)
    sources["DB2"].load_rows("cover", dataset.cover)
    sources["DB3"].load_rows("billing", dataset.billing)
    sources["DB4"].load_rows("treatment", dataset.treatment)
    sources["DB4"].load_rows("procedure", dataset.procedure)


def make_loaded_sources(scale: str = "small", seed: int = 42,
                        backend: str | dict[str, str] | None = None,
                        **generate_kwargs
                        ) -> tuple[dict[str, DataSource], HospitalDataset]:
    """Convenience: generate + load in one call."""
    dataset = generate(scale, seed, **generate_kwargs)
    sources = make_sources(backend=backend)
    enforce_key = not generate_kwargs.get("violate_key", False)
    load_dataset(dataset, sources, enforce_billing_key=enforce_key)
    return sources, dataset
