"""Seeded generation of the hospital relations at the Table 1 scales.

Cardinalities (Table 1 of the paper)::

              patient  visitInfo  cover  billing  treatment  procedure
    small        2500      11371   2224      175        175        441
    medium       3300      14887   3762      250        250        718
    large        5000      22496   8996      350        350        923

The ``procedure`` hierarchy is a 7-layer DAG.  Layer sizes and per-layer
out-degrees were calibrated offline against the paper's in-text self-join
cardinalities for Large (3-way 4055, 4-way 6837; we land within a few
percent) and are scaled proportionally for the other datasets, with random
edge insertion/removal to hit the exact Table 1 edge counts.

By construction the generated data satisfies σ0's constraints: ``billing``
prices every treatment exactly once (key + inclusion constraint hold).
``violate_inclusion``/``violate_key`` inject targeted violations for tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import SpecError

#: Relative layer sizes and per-layer mean out-degrees of the procedure DAG
#: (calibrated for Large = 350 treatments / 923 edges).
_LAYER_FRACTIONS = [69 / 350, 64 / 350, 62 / 350, 47 / 350, 47 / 350,
                    34 / 350, 27 / 350]
_LAYER_DEGREES = [3.177, 2.706, 3.145, 1.214, 3.434, 2.833]

#: Visit dates: ten days of June 2003 (the paper's daily-report scenario).
DATES = [f"2003-06-{day:02d}" for day in range(1, 11)]

_TREATMENT_NAMES = [
    "checkup", "xray", "mri", "biopsy", "bloodwork", "cast", "suture",
    "vaccination", "ultrasound", "dialysis", "chemotherapy", "physical",
    "ekg", "endoscopy", "allergy-test",
]


@dataclass(frozen=True)
class Scale:
    """Target cardinalities for one dataset."""

    name: str
    patients: int
    visits: int
    covers: int
    treatments: int
    procedures: int

    @property
    def billing(self) -> int:
        return self.treatments  # one price per treatment (IC by construction)


SCALES: dict[str, Scale] = {
    "tiny": Scale("tiny", 50, 220, 60, 20, 24),  # fast tests
    "small": Scale("small", 2500, 11371, 2224, 175, 441),
    "medium": Scale("medium", 3300, 14887, 3762, 250, 718),
    "large": Scale("large", 5000, 22496, 8996, 350, 923),
}


@dataclass
class HospitalDataset:
    """Generated rows for the four databases, plus metadata."""

    scale: Scale
    patient: list[tuple] = field(default_factory=list)
    visit_info: list[tuple] = field(default_factory=list)
    cover: list[tuple] = field(default_factory=list)
    billing: list[tuple] = field(default_factory=list)
    treatment: list[tuple] = field(default_factory=list)
    procedure: list[tuple] = field(default_factory=list)

    def busiest_date(self) -> str:
        """The report date with the most visits (the benchmark workload)."""
        counts: dict[str, int] = {}
        for _, _, date in self.visit_info:
            counts[date] = counts.get(date, 0) + 1
        return max(sorted(counts), key=counts.get)

    def cardinalities(self) -> dict[str, int]:
        return {
            "patient": len(self.patient),
            "visitInfo": len(self.visit_info),
            "cover": len(self.cover),
            "billing": len(self.billing),
            "treatment": len(self.treatment),
            "procedure": len(self.procedure),
        }


def generate(scale: str | Scale = "small", seed: int = 42,
             violate_inclusion: bool = False,
             violate_key: bool = False) -> HospitalDataset:
    """Generate one dataset deterministically from ``seed``."""
    if isinstance(scale, str):
        try:
            scale = SCALES[scale]
        except KeyError:
            raise SpecError(f"unknown scale {scale!r}; "
                            f"choose from {sorted(SCALES)}") from None
    # zlib.crc32 is stable across processes (str.__hash__ is randomized,
    # which would make "deterministic" datasets differ between runs).
    import zlib
    rng = random.Random(zlib.crc32(f"{scale.name}:{seed}".encode()))
    dataset = HospitalDataset(scale)

    # -- treatments and the procedure DAG --------------------------------
    trids = [f"T{i:04d}" for i in range(scale.treatments)]
    dataset.treatment = [
        (trid, f"{_TREATMENT_NAMES[i % len(_TREATMENT_NAMES)]}-{i}")
        for i, trid in enumerate(trids)]
    dataset.procedure = _procedure_dag(trids, scale.procedures, rng)

    # -- billing: every treatment priced exactly once --------------------
    dataset.billing = [(trid, str(rng.randrange(25, 950)))
                       for trid in trids]

    # -- patients and policies -------------------------------------------
    n_policies = max(1, scale.patients // 5)
    policies = [f"P{i:05d}" for i in range(n_policies)]
    dataset.patient = [
        (f"S{i:06d}", f"patient-{i}", rng.choice(policies))
        for i in range(scale.patients)]

    # -- insurance coverage ----------------------------------------------
    pairs: set[tuple[str, str]] = set()
    while len(pairs) < scale.covers:
        pairs.add((rng.choice(policies), rng.choice(trids)))
    dataset.cover = sorted(pairs)

    # -- visits ------------------------------------------------------------
    dataset.visit_info = [
        (dataset.patient[rng.randrange(scale.patients)][0],
         rng.choice(trids), rng.choice(DATES))
        for _ in range(scale.visits)]

    if violate_inclusion:
        _inject_inclusion_violation(dataset, rng)
    if violate_key:
        _inject_key_violation(dataset, rng)
    return dataset


def _procedure_dag(trids: list[str], target_edges: int,
                   rng: random.Random) -> list[tuple[str, str]]:
    """A layered DAG over the treatments with exactly ``target_edges``."""
    total = len(trids)
    sizes = [max(1, int(round(fraction * total)))
             for fraction in _LAYER_FRACTIONS]
    while sum(sizes) > total:
        sizes[sizes.index(max(sizes))] -= 1
    sizes[0] += total - sum(sizes)
    layers: list[list[str]] = []
    cursor = 0
    for size in sizes:
        layers.append(trids[cursor:cursor + size])
        cursor += size

    edges: set[tuple[str, str]] = set()
    for level, mean_degree in enumerate(_LAYER_DEGREES):
        below = layers[level + 1]
        for node in layers[level]:
            degree = int(mean_degree)
            if rng.random() < mean_degree - degree:
                degree += 1
            degree = min(degree, len(below))
            for child in rng.sample(below, degree):
                edges.add((node, child))

    # Adjust to the exact Table 1 cardinality.
    edge_list = sorted(edges)
    while len(edge_list) > target_edges:
        edge_list.pop(rng.randrange(len(edge_list)))
    attempts = 0
    existing = set(edge_list)
    deepest = len(_LAYER_DEGREES) - 1
    while len(edge_list) < target_edges and attempts < 100000:
        # Pad at the deepest transition: those edges extend few paths, so
        # the calibrated join growth stays close to the paper's figures.
        attempts += 1
        candidate = (rng.choice(layers[deepest]),
                     rng.choice(layers[deepest + 1]))
        if candidate not in existing:
            existing.add(candidate)
            edge_list.append(candidate)
        elif attempts % 100 == 0:
            deepest = max(0, deepest - 1)  # deepest layer saturated
    return sorted(edge_list)


def procedure_path_counts(procedure_rows: list[tuple],
                          max_length: int) -> list[int]:
    """Number of directed paths of each length 1..max_length — the n-way
    self-join cardinalities of the ``procedure`` relation (Section 6)."""
    from collections import defaultdict
    ending_at: dict[str, int] = defaultdict(int)
    for _, child in procedure_rows:
        ending_at[child] += 1
    counts = [len(procedure_rows)]
    current = dict(ending_at)
    for _ in range(2, max_length + 1):
        following: dict[str, int] = defaultdict(int)
        for parent, child in procedure_rows:
            if current.get(parent):
                following[child] += current[parent]
        current = dict(following)
        counts.append(sum(current.values()))
    return counts


def _inject_inclusion_violation(dataset: HospitalDataset,
                                rng: random.Random) -> None:
    """Remove a billing row whose treatment is visited and covered, so the
    inclusion constraint fails for some patient."""
    covered = {trid for _, trid in dataset.cover}
    visited = {trid for _, trid, _ in dataset.visit_info}
    candidates = sorted(covered & visited)
    if not candidates:
        raise SpecError("cannot inject an inclusion violation: no covered, "
                        "visited treatment exists")
    victim = rng.choice(candidates)
    dataset.billing = [row for row in dataset.billing if row[0] != victim]


def _inject_key_violation(dataset: HospitalDataset,
                          rng: random.Random) -> None:
    """Duplicate a billing row for a visited, covered treatment (requires
    loading into an unkeyed billing table)."""
    covered = {trid for _, trid in dataset.cover}
    visited = {trid for _, trid, _ in dataset.visit_info}
    candidates = [row for row in dataset.billing
                  if row[0] in covered and row[0] in visited]
    if not candidates:
        raise SpecError("cannot inject a key violation")
    duplicate = rng.choice(candidates)
    dataset.billing.append((duplicate[0], str(int(duplicate[1]) + 1)))
