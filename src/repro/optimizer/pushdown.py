"""Projection and predicate pushdown over the QDG (docs/DATAPLANE.md).

Runs between :func:`~repro.optimizer.qdg.build_qdg` and Algorithm Merge —
pre-merge the graph has no aliases and every node's ``output_columns`` still
match its own query, so both rewrites are local:

* **Projection trimming** drops select items of intermediate decomposition
  steps that no consumer references.  Nodes the tagging phase reads
  (``table_of``/``condition_of``, i.e. every ``ship_to_mediator`` chain
  tail) are never trimmed: sibling sort order uses *all* their business
  columns and the recursion blocked-query probe
  (``Middleware._needs_deeper``) reads inherited members straight out of
  their cached rows, so trimming them could change bytes or mask a
  too-shallow unfolding.

* **Predicate pushdown** copies a sargable predicate (``column op literal``
  or ``column op $root_param``) from a consumer into its producer when the
  producer is a plain step with exactly that one consumer and is not read
  by tagging.  The consumer keeps its copy, so the rewrite is idempotent
  and NULL comparisons filter identically on both sides.

The pass also measures base-table scan width: ``columns_read`` counts the
distinct columns each query references per base-table scan,
``columns_available`` the relation's schema width — the
``columns_read/columns_available`` ratio drops below 1.0 exactly when the
document leaves relation columns untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.relational.schema import Catalog
from repro.sqlq.analyze import scalar_params
from repro.sqlq.ast import (
    BaseTable,
    ColumnRef,
    Comparison,
    InSet,
    Literal,
    Param,
    TempTable,
)
from repro.optimizer.qdg import QueryDependencyGraph, TaggingPlan


@dataclass
class PushdownReport:
    """What one pushdown pass did, for metrics/explain output."""

    columns_pruned: int = 0
    predicates_moved: int = 0
    columns_read: int = 0
    columns_available: int = 0


def apply_pushdown(graph: QueryDependencyGraph, tagging_plan: TaggingPlan,
                   catalog: Catalog) -> PushdownReport:
    """Trim projections, move sargable predicates, measure scan width.

    Mutates ``graph`` in place (nodes are per-``prepare`` instances) and
    returns a :class:`PushdownReport`.
    """
    report = PushdownReport()
    needed = _needed_columns(graph, tagging_plan)
    _trim_projections(graph, needed, report)
    _move_predicates(graph, report)
    _measure_scan_width(graph, catalog, report)
    return report


#: Sentinel in the needed-columns map: every output column is required.
_ALL = None


def _needed_columns(graph: QueryDependencyGraph,
                    tagging_plan: TaggingPlan) -> dict[str, set[str] | None]:
    """Per node, the output columns some consumer or the tagging phase
    reads — ``_ALL`` (None) when the node must keep its full output."""
    needed: dict[str, set[str] | None] = {name: set() for name in graph.nodes}

    def need_all(name: str) -> None:
        needed[graph.resolve(name)] = _ALL

    def mark(name: str, column: str) -> None:
        columns = needed[graph.resolve(name)]
        if columns is not None:
            columns.add(column)

    # Tagging reads table nodes (all columns: canonical sibling sort uses
    # the full business-column tuple, and the recursion probe reads
    # inherited members from their rows) and condition nodes (the selector
    # is positional: output_columns[0]).
    for node_name in tagging_plan.table_of.values():
        need_all(node_name)
    for node_name in tagging_plan.condition_of.values():
        need_all(node_name)

    for node in graph.nodes.values():
        if node.raw_sql is not None:
            # Mediator SQL templates (collect/guard nodes) reference inputs
            # textually — keep them whole rather than parse the SQL.
            for producer in graph.producer_names(node):
                need_all(producer)
            continue
        if node.query is None:
            continue
        producer_of = {item.alias: item.producer
                       for item in node.query.from_items
                       if isinstance(item, TempTable)}
        # Defensive: inputs not visible as temp tables stay whole.
        for producer in graph.producer_names(node):
            if graph.resolve(producer) not in {
                    graph.resolve(p) for p in producer_of.values()}:
                need_all(producer)

        def mark_expr(expr) -> None:
            if not isinstance(expr, ColumnRef):
                return
            if not expr.table:
                for producer in producer_of.values():
                    need_all(producer)
                return
            producer = producer_of.get(expr.table)
            if producer is not None:
                mark(producer, expr.column)

        for item in node.query.select:
            mark_expr(item.expr)
        for predicate in node.query.where:
            if isinstance(predicate, Comparison):
                mark_expr(predicate.left)
                mark_expr(predicate.right)
            else:
                assert isinstance(predicate, InSet)
                mark_expr(predicate.column)
    return needed


def _trim_projections(graph: QueryDependencyGraph,
                      needed: dict[str, set[str] | None],
                      report: PushdownReport) -> None:
    for node in graph.nodes.values():
        keep = needed[node.name]
        if keep is _ALL or node.kind != "step" or node.query is None:
            continue
        if node.ship_to_mediator or node.query.distinct:
            # Shipped slices are read by name downstream of merging;
            # trimming a DISTINCT projection changes row multiplicity.
            continue
        new_select = tuple(item for item in node.query.select
                           if item.alias in keep)
        if not new_select or len(new_select) == len(node.query.select):
            continue
        report.columns_pruned += len(node.query.select) - len(new_select)
        node.query = replace(node.query, select=new_select)
        node.output_columns = tuple(node.query.output_names)
        node.root_params = {param: member
                            for param, member in node.root_params.items()
                            if param in scalar_params(node.query)}
        for consumer in graph.nodes.values():
            if consumer.query is None:
                continue
            items = tuple(
                TempTable(item.producer, item.alias, node.output_columns)
                if isinstance(item, TempTable)
                and graph.resolve(item.producer) == node.name else item
                for item in consumer.query.from_items)
            if items != consumer.query.from_items:
                consumer.query = replace(consumer.query, from_items=items)


def _move_predicates(graph: QueryDependencyGraph,
                     report: PushdownReport) -> None:
    for consumer in graph.nodes.values():
        if consumer.query is None:
            continue
        temp_items = [item for item in consumer.query.from_items
                      if isinstance(item, TempTable)]
        producer_uses: dict[str, int] = {}
        for item in temp_items:
            name = graph.resolve(item.producer)
            producer_uses[name] = producer_uses.get(name, 0) + 1
        for predicate in consumer.query.where:
            if not isinstance(predicate, Comparison):
                continue
            for column_side, other_side, flipped in (
                    (predicate.left, predicate.right, False),
                    (predicate.right, predicate.left, True)):
                if not isinstance(column_side, ColumnRef):
                    continue
                if isinstance(other_side, Literal):
                    bound_member = None
                elif (isinstance(other_side, Param)
                        and other_side.name in consumer.root_params):
                    bound_member = consumer.root_params[other_side.name]
                else:
                    continue
                item = next((i for i in temp_items
                             if i.alias == column_side.table), None)
                if item is None:
                    continue
                name = graph.resolve(item.producer)
                producer = graph.nodes.get(name)
                if (producer is None or producer.kind != "step"
                        or producer.query is None
                        or producer.ship_to_mediator
                        or producer_uses[name] != 1):
                    continue
                if [c.name for c in graph.consumers(name)] != [consumer.name]:
                    continue
                select_item = next(
                    (s for s in producer.query.select
                     if s.alias == column_side.column), None)
                if select_item is None \
                        or not isinstance(select_item.expr, ColumnRef):
                    continue
                if bound_member is not None:
                    existing = producer.root_params.get(other_side.name)
                    if ((existing is not None and existing != bound_member)
                            or (existing is None and other_side.name
                                in scalar_params(producer.query))):
                        continue  # name collision with a different binding
                moved = (Comparison(other_side, predicate.op,
                                    select_item.expr) if flipped
                         else Comparison(select_item.expr, predicate.op,
                                         other_side))
                if moved in producer.query.where:
                    continue
                producer.query = producer.query.with_extra_where(moved)
                if bound_member is not None:
                    producer.root_params = dict(producer.root_params)
                    producer.root_params[other_side.name] = bound_member
                report.predicates_moved += 1
                break


def _measure_scan_width(graph: QueryDependencyGraph, catalog: Catalog,
                        report: PushdownReport) -> None:
    for node in graph.nodes.values():
        if node.query is None:
            continue
        for item in node.query.from_items:
            if not isinstance(item, BaseTable):
                continue
            _, schema = catalog.resolve(f"{item.source}:{item.relation}")
            width = len(schema.column_names)
            referenced: set[str] = set()

            def collect(expr) -> None:
                if isinstance(expr, ColumnRef) and expr.table == item.alias:
                    referenced.add(expr.column)

            for select_item in node.query.select:
                collect(select_item.expr)
            for predicate in node.query.where:
                if isinstance(predicate, Comparison):
                    collect(predicate.left)
                    collect(predicate.right)
                else:
                    collect(predicate.column)
            report.columns_available += width
            report.columns_read += min(len(referenced), width)
