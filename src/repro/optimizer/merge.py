"""Algorithm *Merge* (Section 5.4, Fig. 9).

Iteratively pick the pair of same-source queries whose merging most reduces
the scheduled plan cost; merge them (``mergePair``); repeat until no pair
helps.  Merging two queries yields a single node that is executed once:

* **independent** queries merge by *outer union* — realized at execution as
  one statement ``SELECT '<member>' AS __tag, …padded columns… UNION ALL …``
  with a discriminator column, so consumers (and the tagging phase) extract
  exactly their member's slice before use;
* **dependent** queries (``Q1 ->G Q2``) merge by *inlining*: ``Q1`` becomes
  a CTE the ``Q2`` branch reads, the paper's outer-join-style inlining.

Both cases are uniformly represented by :class:`MergedNode` carrying the
member nodes in topological order; the engine renders the combined
statement and re-splits the result by tag, so downstream consumers keep
referencing the original member names.  The merged graph stays a DAG —
candidate merges producing a cycle are rejected (step 6 of Fig. 9).
"""

from __future__ import annotations

import itertools
import logging
from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.relational.network import Network
from repro.relational.source import MEDIATOR_NAME
from repro.optimizer.cost import CostModel, NodeEstimate, plan_cost
from repro.optimizer.qdg import QueryDependencyGraph, QueryNode
from repro.optimizer.schedule import schedule

#: Node kinds that may participate in merging (AST-rendered queries).
MERGEABLE_KINDS = {"step", "condition", "merged"}

logger = logging.getLogger("repro.optimizer.merge")


@dataclass
class MergedNode(QueryNode):
    """A merged query: members execute as one statement at one source."""

    members: tuple[QueryNode, ...] = ()

    def __repr__(self) -> str:
        inner = "+".join(m.name for m in self.members)
        return f"MergedNode({inner}@{self.source})"


def _flatten(node: QueryNode) -> tuple[QueryNode, ...]:
    if isinstance(node, MergedNode):
        return node.members
    return (node,)


def merge_pair(graph: QueryDependencyGraph, first: str,
               second: str) -> QueryDependencyGraph:
    """The paper's ``mergePair(G, Q1, Q2)``: a new graph with one node
    replacing the two.  Consumers keep their original input names."""
    node_a, node_b = graph.nodes[first], graph.nodes[second]
    if node_a.source != node_b.source:
        raise PlanError("cannot merge queries on different sources")
    members = _flatten(node_a) + _flatten(node_b)
    member_names = {member.name for member in members}
    inputs: list[str] = []
    for member in members:
        for input_name in member.inputs:
            if graph.resolve(input_name) in (first, second):
                continue  # internal edge (inlining)
            if input_name not in inputs:
                inputs.append(input_name)
    merged = MergedNode(
        name=f"merge({'+'.join(sorted(member_names))})",
        source=node_a.source,
        kind="merged",
        inputs=tuple(inputs),
        output_columns=(),
        ship_to_mediator=any(member.ship_to_mediator for member in members),
        members=members,
    )
    new_graph = graph.clone()
    del new_graph.nodes[first]
    del new_graph.nodes[second]
    new_graph.aliases[first] = merged.name
    new_graph.aliases[second] = merged.name
    new_graph.add(merged)
    return new_graph


def _extend_estimates(graph: QueryDependencyGraph,
                      base: dict[str, NodeEstimate],
                      model: CostModel) -> dict[str, NodeEstimate]:
    """Per-member estimates plus entries for the merged nodes."""
    estimates = dict(base)
    for node in graph.nodes.values():
        if isinstance(node, MergedNode) and node.name not in estimates:
            estimates[node.name] = model.estimate_merged(node, estimates)
    return estimates


def merge(graph: QueryDependencyGraph, model: CostModel, network: Network,
          max_iterations: int | None = None, tracer=None
          ) -> tuple[QueryDependencyGraph, dict, float, dict[str, NodeEstimate]]:
    """Algorithm Merge: returns (graph, plan, cost, estimates).

    Follows Fig. 9: start from the scheduled cost of the input graph, then
    greedily apply the best beneficial pair merge until none helps (or
    ``max_iterations`` merges were applied).  ``tracer`` (see
    :mod:`repro.obs`) records the unmerged-vs-merged predicted costs so
    the merge savings are visible in the metrics export.
    """
    from repro.obs.tracer import NULL_TRACER
    tracer = NULL_TRACER if tracer is None else tracer
    base_estimates = model.estimate_graph(graph)
    estimates = base_estimates
    plan = schedule(graph, estimates, network)
    best_cost = plan_cost(graph, plan, estimates, network)
    unmerged_cost = best_cost
    iterations = 0
    while True:
        benefit = False
        best_candidate = None
        candidates = _mergeable_pairs(graph)
        for first, second in candidates:
            trial = merge_pair(graph, first, second)
            if not trial.is_acyclic():
                continue
            trial_estimates = _extend_estimates(trial, base_estimates, model)
            trial_plan = schedule(trial, trial_estimates, network)
            trial_cost = plan_cost(trial, trial_plan, trial_estimates,
                                   network)
            if trial_cost < best_cost - 1e-12:
                benefit = True
                best_cost = trial_cost
                best_candidate = (trial, trial_plan, trial_estimates)
        if not benefit or best_candidate is None:
            break
        graph, plan, estimates = best_candidate
        iterations += 1
        if max_iterations is not None and iterations >= max_iterations:
            break
    metrics = tracer.metrics
    metrics.set_gauge("optimizer_cost_unmerged_seconds", unmerged_cost)
    metrics.set_gauge("optimizer_cost_merged_seconds", best_cost)
    metrics.set_gauge("optimizer_merge_savings_seconds",
                      unmerged_cost - best_cost)
    metrics.set_gauge("optimizer_merge_iterations", iterations)
    logger.info("Algorithm Merge: %d merge(s), predicted cost "
                "%.3fs -> %.3fs", iterations, unmerged_cost, best_cost)
    return graph, plan, best_cost, estimates


def _mergeable_pairs(graph: QueryDependencyGraph
                     ) -> list[tuple[str, str]]:
    """Candidate same-source pairs (deterministic order)."""
    by_source: dict[str, list[str]] = {}
    for name, node in sorted(graph.nodes.items()):
        if node.kind in MERGEABLE_KINDS and node.source != MEDIATOR_NAME:
            by_source.setdefault(node.source, []).append(name)
    pairs: list[tuple[str, str]] = []
    for names in by_source.values():
        pairs.extend(itertools.combinations(names, 2))
    return pairs


def unmerged_plan(graph: QueryDependencyGraph, model: CostModel,
                  network: Network) -> tuple[dict, float,
                                             dict[str, NodeEstimate]]:
    """Schedule + cost without any merging (the Fig. 10 baseline)."""
    estimates = model.estimate_graph(graph)
    plan = schedule(graph, estimates, network)
    return plan, plan_cost(graph, plan, estimates, network), estimates
