"""The optimization phase (Sections 5.1–5.4).

* :mod:`repro.optimizer.qdg` — set-oriented rewriting of every query site
  into the **query dependency graph** (a DAG of single-source queries plus
  mediator-side collection/condition/guard queries), together with the
  tagging plan.
* :mod:`repro.optimizer.cost` — cardinality/size/evaluation-cost estimation
  (the sources' "costing API") and the paper's ``comp_time``/``cost(P)``
  plan-cost function.
* :mod:`repro.optimizer.schedule` — Algorithm *Schedule* (Fig. 8): ℓevel-
  priority list scheduling of queries onto their sources.
* :mod:`repro.optimizer.merge` — Algorithm *Merge* (Fig. 9): greedy
  cost-based pairwise merging of same-source queries (outer union / CTE
  inlining), re-scheduling after each candidate merge.
"""

from repro.optimizer.qdg import (
    QueryDependencyGraph,
    QueryNode,
    TaggingPlan,
    build_qdg,
)
from repro.optimizer.cost import CostModel, plan_cost
from repro.optimizer.schedule import ExecutionPlan, schedule
from repro.optimizer.merge import merge

__all__ = [
    "QueryDependencyGraph",
    "QueryNode",
    "TaggingPlan",
    "build_qdg",
    "CostModel",
    "plan_cost",
    "ExecutionPlan",
    "schedule",
    "merge",
]
