"""Query-dependency-graph construction (Section 5.1).

The builder walks the occurrence tree of a specialized, non-recursive AIG
and turns every query site into *set-oriented*, single-source queries:

* Each **iteration occurrence** (root-level star children, nested stars,
  query-valued inherited attributes) gets a chain of plan-step nodes.  The
  per-tuple parameterized query ``Q(v)`` is rewritten to join the cached
  table of its anchor ancestor once (``Q(T_patient)`` in the paper), its
  scalar parameters replaced — via copy-chain resolution, i.e. copy
  elimination — by columns of the originating tables, and a ``__parent``
  column (the paper's path encoding) is projected through so every output
  row knows which ancestor row it belongs to.  Multi-source rewritten
  queries are decomposed by the left-deep planner into single-source steps.

* Each **collection use** (a set parameter, or a guard input) becomes a
  mediator-side *collect* node: a UNION ALL over extractions from the
  relevant occurrence tables, each row tagged with the ``__group`` ancestor
  row id (found by joining ``__parent`` chains).

* Each **choice production occurrence** gets a *condition* node computing
  the branch selector per anchor row.

* Each **guard** becomes a mediator-side node whose non-empty result aborts
  evaluation (``unique``: duplicate detection with GROUP BY/HAVING;
  ``subset``: anti-join).

The result is a DAG over named nodes — "the DAG structure reflects the fact
that an AIG generally specifies sharing of a query output among multiple
further queries" — plus the :class:`TaggingPlan` the tree-construction phase
consumes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace

from repro.errors import CompilationError, PlanError
from repro.dtd.model import Choice, PCDATA, Sequence, Star
from repro.relational.source import MEDIATOR_NAME
from repro.relational.statistics import StatisticsCatalog
from repro.sqlq.analyze import scalar_params, set_params, temp_inputs
from repro.sqlq.ast import (
    ColumnRef,
    Comparison,
    InSet,
    Literal,
    Param,
    Query,
    SelectItem,
    SetParamTable,
    TempTable,
)
from repro.sqlq.planner import plan_steps
from repro.aig.functions import AttrRef, Const, QueryFunc
from repro.aig.guards import SubsetGuard, UniqueGuard
from repro.aig.rules import ChoiceRule, PCDataRule, StarRule, SequenceRule
from repro.compilation.occurrences import (
    ConstValue,
    Extraction,
    Occurrence,
    OccurrenceTree,
    Provenance,
    RootValue,
    TableColumn,
)
from repro.compilation.specialize import SpecializedAIG

#: Alias of the anchor-context table joined into rewritten queries.
CONTEXT_ALIAS = "__ctx"


@dataclass
class QueryNode:
    """One node of the query dependency graph."""

    name: str
    source: str                      # executing source ("Mediator" allowed)
    kind: str                        # 'step' | 'collect' | 'condition' | 'guard'
    query: Query | None = None       # AST payload (step/condition nodes)
    raw_sql: str | None = None       # mediator SQL template ({node} -> table)
    inputs: tuple[str, ...] = ()     # producer node names
    output_columns: tuple[str, ...] = ()
    ship_to_mediator: bool = False   # needed by the tagging phase
    root_params: dict[str, str] = field(default_factory=dict)
    guard = None                     # set on guard nodes

    def __repr__(self) -> str:
        return f"QueryNode({self.name!r}@{self.source}, {self.kind})"


class QueryDependencyGraph:
    """A DAG of :class:`QueryNode`\\ s.

    Query merging replaces two nodes by one; ``aliases`` maps absorbed node
    names to the merged node so that consumer ``inputs`` (which keep the
    original producer names — they identify the *slice* of the merged output
    a consumer reads) still resolve.
    """

    def __init__(self):
        self.nodes: dict[str, QueryNode] = {}
        self.aliases: dict[str, str] = {}

    def add(self, node: QueryNode) -> QueryNode:
        if node.name in self.nodes:
            raise PlanError(f"duplicate QDG node {node.name!r}")
        self.nodes[node.name] = node
        return node

    def resolve(self, name: str) -> str:
        while name in self.aliases:
            name = self.aliases[name]
        return name

    def node_for(self, name: str) -> QueryNode:
        return self.nodes[self.resolve(name)]

    def producer_names(self, node: QueryNode) -> list[str]:
        """Resolved, deduplicated producer node names (self-edges dropped)."""
        seen: list[str] = []
        for name in node.inputs:
            resolved = self.resolve(name)
            if resolved != node.name and resolved not in seen:
                seen.append(resolved)
        return seen

    def consumers(self, name: str) -> list[QueryNode]:
        return [node for node in self.nodes.values()
                if name in self.producer_names(node)]

    def topological_order(self) -> list[QueryNode]:
        """Nodes in dependency order; raises :class:`PlanError` on cycles."""
        indegree = {name: 0 for name in self.nodes}
        consumers: dict[str, list[str]] = {name: [] for name in self.nodes}
        for node in self.nodes.values():
            for producer in self.producer_names(node):
                indegree[node.name] += 1
                consumers[producer].append(node.name)
        ready = [name for name, degree in indegree.items() if degree == 0]
        heapq.heapify(ready)
        ordered: list[QueryNode] = []
        while ready:
            current = heapq.heappop(ready)
            ordered.append(self.nodes[current])
            for consumer in consumers[current]:
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    heapq.heappush(ready, consumer)
        if len(ordered) != len(self.nodes):
            raise PlanError("query dependency graph is cyclic")
        return ordered

    def is_acyclic(self) -> bool:
        try:
            self.topological_order()
            return True
        except PlanError:
            return False

    def taint_cone(self, seeds) -> set[str]:
        """The downstream closure of ``seeds``: the seeds plus every
        transitive consumer, as resolved node names.

        This is the set of nodes whose output can change when the seeds'
        outputs change — the part of the plan incremental re-evaluation
        must re-execute (everything else can reuse cached results; see
        docs/INCREMENTAL.md).
        """
        consumers: dict[str, list[str]] = {name: [] for name in self.nodes}
        for node in self.nodes.values():
            for producer in self.producer_names(node):
                consumers[producer].append(node.name)
        tainted = {self.resolve(seed) for seed in seeds
                   if self.resolve(seed) in self.nodes}
        frontier = list(tainted)
        while frontier:
            for consumer in consumers[frontier.pop()]:
                if consumer not in tainted:
                    tainted.add(consumer)
                    frontier.append(consumer)
        return tainted

    def clone(self) -> "QueryDependencyGraph":
        duplicate = QueryDependencyGraph()
        duplicate.nodes = dict(self.nodes)
        duplicate.aliases = dict(self.aliases)
        return duplicate

    def sources(self) -> list[str]:
        return sorted({node.source for node in self.nodes.values()})

    def to_dot(self, estimates: dict | None = None) -> str:
        """Graphviz DOT rendering (nodes clustered by source).

        With ``estimates`` each node label includes its estimated output
        cardinality — handy when eyeballing why Merge chose a pair.
        """
        lines = ["digraph qdg {", "  rankdir=LR;", "  node [shape=box];"]
        by_source: dict[str, list[QueryNode]] = {}
        for node in self.nodes.values():
            by_source.setdefault(node.source, []).append(node)
        for index, (source, nodes) in enumerate(sorted(by_source.items())):
            lines.append(f'  subgraph cluster_{index} {{')
            lines.append(f'    label="{source}";')
            for node in nodes:
                label = node.name.replace('"', "'")
                if estimates and node.name in estimates:
                    label += f"\\n~{estimates[node.name].cardinality:.0f} rows"
                shape = {"guard": "octagon", "collect": "ellipse",
                         "condition": "diamond"}.get(node.kind, "box")
                lines.append(f'    "{node.name}" [label="{label}" '
                             f'shape={shape}];')
            lines.append("  }")
        for node in self.nodes.values():
            for producer in self.producer_names(node):
                lines.append(f'  "{producer}" -> "{node.name}";')
        lines.append("}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.nodes)


@dataclass
class TaggingPlan:
    """Everything the tree-construction phase needs.

    ``table_of`` maps iteration-occurrence paths to the QDG node producing
    their table; ``sort_columns`` gives the canonical child order columns;
    ``text_of`` gives the PCDATA provenance per text occurrence;
    ``condition_of`` maps choice-production occurrence paths to their
    condition node.
    """

    tree: OccurrenceTree
    table_of: dict[str, str] = field(default_factory=dict)
    sort_columns: dict[str, list[str]] = field(default_factory=dict)
    text_of: dict[str, Provenance] = field(default_factory=dict)
    condition_of: dict[str, str] = field(default_factory=dict)


def build_qdg(spec: SpecializedAIG,
              stats: StatisticsCatalog | None = None
              ) -> tuple[QueryDependencyGraph, TaggingPlan]:
    """Build the QDG and tagging plan for a non-recursive specialized AIG."""
    if spec.occurrences is None:
        raise PlanError("QDG construction requires a non-recursive AIG; "
                        "unfold recursion first")
    builder = _Builder(spec, stats)
    return builder.build()


class _Builder:
    def __init__(self, spec: SpecializedAIG, stats: StatisticsCatalog | None):
        self.spec = spec
        self.aig = spec.aig
        self.occurrences = spec.occurrences
        self.stats = stats
        self.graph = QueryDependencyGraph()
        self.plan = TaggingPlan(self.occurrences)
        self._collect_cache: dict[tuple[str, str, str], str] = {}
        self._guard_counter = 0

    # ------------------------------------------------------------------
    def build(self) -> tuple[QueryDependencyGraph, TaggingPlan]:
        self._walk(self.occurrences.root)
        self._build_guards()
        return self.graph, self.plan

    def _walk(self, occurrence: Occurrence) -> None:
        if occurrence.has_table and occurrence.parent is not None:
            self._build_tabled(occurrence)
        model = self.aig.dtd.production(occurrence.element_type)
        if isinstance(model, PCDATA):
            rule = self.aig.rule_for(occurrence.element_type)
            assert isinstance(rule, PCDataRule)
            expression = rule.text.expr("__text__")
            if isinstance(expression, Const):
                self.plan.text_of[occurrence.path] = ConstValue(
                    expression.value)
            else:
                assert (isinstance(expression, AttrRef)
                        and expression.kind == "inh")
                self.plan.text_of[occurrence.path] = (
                    self.occurrences.resolve_inh_scalar(occurrence,
                                                        expression.member))
        if isinstance(model, Choice):
            self._build_condition(occurrence)
        for child in occurrence.children:
            self._walk(child)

    # ------------------------------------------------------------------
    # iteration occurrences
    # ------------------------------------------------------------------
    def _site_query(self, occurrence: Occurrence) -> QueryFunc:
        parent = occurrence.parent
        rule = self.aig.rule_for(parent.element_type)
        if occurrence.kind == "star":
            assert isinstance(rule, StarRule)
            return rule.child_query
        if occurrence.kind == "seq":
            assert isinstance(rule, SequenceRule)
            function = rule.inh_for(occurrence.element_type)
        else:
            assert isinstance(rule, ChoiceRule)
            function = rule.branch_for(occurrence.element_type).inh
        assert isinstance(function, QueryFunc)
        return function

    def _build_tabled(self, occurrence: Occurrence) -> None:
        parent = occurrence.parent
        function = self._site_query(occurrence)
        rewritten, inputs, root_params = self._rewrite(
            function, parent, gating=occurrence.choice_edges_gating())
        steps = plan_steps(rewritten, occurrence.path, self.stats,
                           mediator_name=MEDIATOR_NAME,
                           capabilities=self.aig.catalog.capabilities_of)
        final_name = self._add_steps(steps, occurrence.path, "step",
                                     root_params)
        self.plan.table_of[occurrence.path] = final_name
        self.plan.sort_columns[occurrence.path] = list(
            function.query.output_names)

    def _add_steps(self, steps, final_name: str, final_kind: str,
                   root_params: dict[str, str]) -> str:
        """Register a decomposition chain; the last step takes
        ``final_name``/``final_kind``.  Step queries already reference each
        other by their plan-step names; only the final rename needs
        propagating (no chain step consumes the final one, so the rename map
        stays empty in practice but is kept for safety)."""
        renames: dict[str, str] = {}
        node_name = final_name
        for index, step in enumerate(steps):
            is_last = index == len(steps) - 1
            node_name = final_name if is_last else step.name
            if step.name != node_name:
                renames[step.name] = node_name
            step_query = self._apply_renames(step.query, renames)
            self.graph.add(QueryNode(
                name=node_name,
                source=step.source,
                kind=final_kind if is_last else "step",
                query=step_query,
                inputs=tuple(sorted(temp_inputs(step_query))),
                output_columns=tuple(step_query.output_names),
                ship_to_mediator=is_last,
                root_params={p: m for p, m in root_params.items()
                             if p in scalar_params(step_query)},
            ))
        return node_name

    def _apply_renames(self, query: Query, renames: dict[str, str]) -> Query:
        if not renames:
            return query
        new_items = []
        changed = False
        for item in query.from_items:
            if isinstance(item, TempTable) and item.producer in renames:
                new_items.append(TempTable(renames[item.producer],
                                           item.alias, item.columns))
                changed = True
            else:
                new_items.append(item)
        if not changed:
            return query
        return replace(query, from_items=tuple(new_items))

    # ------------------------------------------------------------------
    # set-oriented rewriting
    # ------------------------------------------------------------------
    def _rewrite(self, function: QueryFunc, parent: Occurrence,
                 gating: list[Occurrence] | None = None
                 ) -> tuple[Query, set[str], dict[str, str]]:
        """Rewrite a per-tuple query into its set-oriented form.

        ``gating`` lists choice-child occurrences whose branch must have
        been selected for the produced rows to exist; the rewritten query
        joins the corresponding condition tables.  Returns (rewritten query,
        producer node inputs, root-param map).
        """
        query = function.query
        anchor = parent.anchor
        context = _ContextJoins(anchor)
        root_params: dict[str, str] = {}
        replacements: dict[str, object] = {}

        for param in sorted(scalar_params(query)):
            ref = function.binding_for(param)
            provenance = self._resolve_scalar(ref, parent)
            if isinstance(provenance, RootValue):
                root_params[param] = provenance.member
            elif isinstance(provenance, ConstValue):
                replacements[param] = Literal(provenance.value)
            else:
                assert isinstance(provenance, TableColumn)
                alias = context.alias_for(provenance.occurrence)
                replacements[param] = ColumnRef(alias, provenance.column)

        set_replacements: dict[str, tuple[str, str, Occurrence]] = {}
        for param in sorted(set_params(query)):
            ref = function.binding_for(param)
            node_name, group = self._collect_node_for(ref, parent)
            alias = f"__set_{param}"
            set_replacements[param] = (node_name, alias, group)

        new_select = [SelectItem(self._subst(item.expr, replacements),
                                 item.alias) for item in query.select]
        new_where = []
        new_from = list(query.from_items)
        extra_inputs: set[str] = set()

        for predicate in query.where:
            if isinstance(predicate, Comparison):
                new_where.append(Comparison(
                    self._subst(predicate.left, replacements), predicate.op,
                    self._subst(predicate.right, replacements)))
            else:
                assert isinstance(predicate, InSet)
                node_name, alias, group = set_replacements[predicate.param]
                columns = self._collect_columns(predicate.param, node_name)
                new_from.append(TempTable(node_name, alias, columns))
                extra_inputs.add(node_name)
                field_name = predicate.field or predicate.column.column
                new_where.append(Comparison(
                    predicate.column, "=", ColumnRef(alias, field_name)))
                self._add_group_predicate(new_where, alias, group, context)

        replaced_from = []
        for item in new_from:
            if isinstance(item, SetParamTable):
                node_name, _, group = set_replacements[item.param]
                columns = self._collect_columns(item.param, node_name)
                replaced_from.append(TempTable(node_name, item.alias, columns))
                extra_inputs.add(node_name)
                self._add_group_predicate(new_where, item.alias, group,
                                          context)
            else:
                replaced_from.append(item)

        # Choice gating: rows only exist when every enclosing choice picked
        # this branch — join the condition tables on the anchor row.
        for gate_index, gate in enumerate(gating or []):
            choice_parent = gate.parent
            condition_node = self.plan.condition_of[choice_parent.path]
            selector = self.graph.nodes[condition_node].output_columns[0]
            alias = f"__cond{gate_index}"
            branch_index = self._branch_index(gate)
            replaced_from.append(TempTable(
                condition_node, alias,
                self.graph.nodes[condition_node].output_columns))
            extra_inputs.add(condition_node)
            new_where.append(Comparison(ColumnRef(alias, selector), "=",
                                        Literal(branch_index)))
            if choice_parent.anchor.parent is not None:
                context.ensure_anchor()
                new_where.append(Comparison(
                    ColumnRef(alias, "__parent"), "=",
                    ColumnRef(context.alias_for(choice_parent.anchor),
                              "__id")))

        # Project the anchor row id through as the path-encoding column.
        if context.used or parent.anchor.parent is not None:
            context.ensure_anchor()
        for from_item, producer in context.from_items(self):
            replaced_from.append(from_item)
            extra_inputs.add(producer)
        new_where.extend(context.join_predicates())
        if context.used:
            new_select.append(SelectItem(
                ColumnRef(CONTEXT_ALIAS, "__id"), "__parent"))

        rewritten = Query(tuple(new_select), tuple(replaced_from),
                          tuple(new_where), query.distinct)
        return rewritten, extra_inputs, root_params

    def _subst(self, expression, replacements):
        if isinstance(expression, Param) and expression.name in replacements:
            return replacements[expression.name]
        return expression

    def _branch_index(self, gate: Occurrence) -> int:
        """The selector value that picks this branch (original positions
        survive recursion unfolding via ChoiceRule.selector_names)."""
        model = self.aig.dtd.production(gate.parent.element_type)
        assert isinstance(model, Choice)
        rule = self.aig.rule_for(gate.parent.element_type)
        targets = rule.selector_targets([item.value for item in model.items])
        return targets.index(gate.element_type) + 1

    def _resolve_scalar(self, ref: AttrRef, parent: Occurrence) -> Provenance:
        if ref.kind == "inh":
            return self.occurrences.resolve_inh_scalar(parent, ref.member)
        sibling = parent.child(ref.element)
        return self.occurrences.resolve_syn_scalar(sibling, ref.member)

    def _add_group_predicate(self, where, alias: str, group: Occurrence,
                             context: "_ContextJoins") -> None:
        if group.parent is None:
            return  # grouped under the root: a single global group
        group_alias = context.alias_for(group)
        where.append(Comparison(ColumnRef(alias, "__group"), "=",
                                ColumnRef(group_alias, "__id")))

    def _collect_columns(self, param: str, node_name: str) -> tuple[str, ...]:
        return tuple(self.graph.nodes[node_name].output_columns)

    # ------------------------------------------------------------------
    # collect nodes (synthesized / inherited collections at the mediator)
    # ------------------------------------------------------------------
    def _collect_node_for(self, ref: AttrRef, parent: Occurrence
                          ) -> tuple[str, Occurrence]:
        if ref.kind == "inh":
            owner = parent
            extractions = self.occurrences.expand_inh_collection(owner,
                                                                 ref.member)
            cache_key = (owner.path, "inh", ref.member)
        else:
            owner = parent.child(ref.element)
            extractions = self.occurrences.expand_syn_collection(owner,
                                                                 ref.member)
            cache_key = (owner.path, "syn", ref.member)
        group = owner.anchor if not owner.is_iteration else owner
        if cache_key in self._collect_cache:
            return self._collect_cache[cache_key], group
        fields = self._fields_of(ref, owner)
        distinct = self._is_set_member(ref, owner)
        name = f"collect:{cache_key[1]}:{owner.path}.{ref.member}"
        node = self._build_collect(name, extractions, fields, group, distinct)
        self._collect_cache[cache_key] = node.name
        return node.name, group

    def _fields_of(self, ref: AttrRef, owner: Occurrence) -> tuple[str, ...]:
        schema = (self.aig.inh_schema(owner.element_type) if ref.kind == "inh"
                  else self.aig.syn_schema(owner.element_type))
        return schema.collection_fields(ref.member)

    def _is_set_member(self, ref: AttrRef, owner: Occurrence) -> bool:
        schema = (self.aig.inh_schema(owner.element_type) if ref.kind == "inh"
                  else self.aig.syn_schema(owner.element_type))
        return not schema.is_bag(ref.member)

    def _build_collect(self, name: str, extractions: list[Extraction],
                       fields: tuple[str, ...], group: Occurrence,
                       distinct: bool) -> QueryNode:
        """A mediator UNION ALL over the extractions, grouped by ``group``."""
        branches: list[str] = []
        inputs: set[str] = set()
        for extraction in extractions:
            branches.append(self._extraction_sql(extraction, fields, group,
                                                 inputs))
        if branches:
            union_sql = " UNION ALL ".join(branches)
        else:
            columns = ", ".join(f"NULL AS \"{f}\"" for f in fields)
            union_sql = (f"SELECT {columns}, NULL AS __group WHERE 0")
        if distinct:
            sql = f"SELECT DISTINCT * FROM ({union_sql})"
        else:
            sql = f"SELECT * FROM ({union_sql})"
        node = QueryNode(
            name=name, source=MEDIATOR_NAME, kind="collect", raw_sql=sql,
            inputs=tuple(sorted(inputs)),
            output_columns=tuple(fields) + ("__group",),
            ship_to_mediator=True)
        return self.graph.add(node)

    def _extraction_sql(self, extraction: Extraction,
                        fields: tuple[str, ...], group: Occurrence,
                        inputs: set[str]) -> str:
        """One UNION branch: rows of the source table mapped to their group.

        The ``__parent`` chain of iteration tables is joined from the source
        occurrence up to (but excluding) the group occurrence; the group row
        id is the last link's ``__parent`` (or the source's own ``__id``
        when the source *is* the group, or 0 when grouped under the root).
        """
        source_occ = extraction.source
        source_table = self.plan.table_of.get(source_occ.path)
        provenance_by_field = dict(extraction.columns)
        aliases = {source_occ.path: "s0"}
        joins: list[str] = []
        chain: list[Occurrence] = [source_occ]
        if source_table is not None:
            inputs.add(source_table)
            from_clause = f"{{{source_table}}} s0"
        else:
            from_clause = "(SELECT 1 AS __one) s0"  # root/const extraction

        def climb_to(target: Occurrence) -> str:
            """Join anchor tables upward until ``target``; its alias."""
            while chain[-1] is not target:
                current = chain[-1]
                if current.parent is None:
                    raise CompilationError(
                        f"{target.path} is not an ancestor of "
                        f"{source_occ.path}")
                up = current.parent.anchor
                if up.path not in aliases:
                    alias = f"s{len(chain)}"
                    table = self.plan.table_of[up.path]
                    inputs.add(table)
                    joins.append(
                        f" JOIN {{{table}}} {alias} ON "
                        f"{aliases[current.path]}.__parent = {alias}.__id")
                    aliases[up.path] = alias
                chain.append(up)
            return aliases[target.path]

        if group.parent is None:
            group_expr = "0"
        elif source_occ is group:
            group_expr = "s0.__id"
        else:
            # group row id = __parent of the deepest occurrence just below
            # the group on the anchor chain
            below = source_occ
            while below.parent is not None and below.parent.anchor is not group:
                below = below.parent.anchor
            if below.parent is None:
                raise CompilationError(
                    f"{group.path} is not an ancestor of {source_occ.path}")
            group_expr = f"{climb_to(below)}.__parent"

        # Choice-branch gates: join each condition table on its selector.
        # (extraction.conditions name the choice-PRODUCTION occurrence.)
        for gate_index, (choice_occ, branch_index) in enumerate(
                extraction.conditions):
            condition_node = self.plan.condition_of[choice_occ.path]
            inputs.add(condition_node)
            selector = self.graph.nodes[condition_node].output_columns[0]
            alias = f"c{gate_index}"
            gate_anchor = choice_occ.anchor
            on_parts = [f'{alias}."{selector}" = {branch_index}']
            if gate_anchor.parent is not None:
                anchor_expr = f"{climb_to(gate_anchor)}.__id"
                on_parts.append(f"{alias}.__parent = {anchor_expr}")
            joins.append(f" JOIN {{{condition_node}}} {alias} ON "
                         + " AND ".join(on_parts))

        select_parts = []
        for field_name in fields:
            provenance = provenance_by_field[field_name]
            if isinstance(provenance, TableColumn):
                alias = aliases.get(provenance.occurrence.path, "s0")
                select_parts.append(
                    f'{alias}."{provenance.column}" AS "{field_name}"')
            elif isinstance(provenance, RootValue):
                select_parts.append(
                    f"{{root:{provenance.member}}} AS \"{field_name}\"")
            else:
                assert isinstance(provenance, ConstValue)
                select_parts.append(
                    f"{_sql_literal(provenance.value)} AS \"{field_name}\"")
        return (f"SELECT {', '.join(select_parts)}, {group_expr} AS __group "
                f"FROM {from_clause}{''.join(joins)}")


    # ------------------------------------------------------------------
    # condition nodes (choice productions)
    # ------------------------------------------------------------------
    def _build_condition(self, occurrence: Occurrence) -> None:
        rule = self.aig.rule_for(occurrence.element_type)
        assert isinstance(rule, ChoiceRule)
        gating = (occurrence.choice_edges_gating()
                  if occurrence.parent is not None else [])
        rewritten, inputs, root_params = self._rewrite(rule.condition,
                                                       occurrence, gating)
        name = f"cond:{occurrence.path}"
        steps = plan_steps(rewritten, name, self.stats,
                           mediator_name=MEDIATOR_NAME,
                           capabilities=self.aig.catalog.capabilities_of)
        self._add_steps(steps, name, "condition", root_params)
        self.plan.condition_of[occurrence.path] = name

    # ------------------------------------------------------------------
    # guard nodes
    # ------------------------------------------------------------------
    def _build_guards(self) -> None:
        for occurrence in self.occurrences.by_path.values():
            for guard in self.aig.guards.get(occurrence.element_type, []):
                self._build_guard(occurrence, guard)

    def _build_guard(self, occurrence: Occurrence, guard) -> None:
        self._guard_counter += 1
        name = f"guard:{occurrence.path}:{self._guard_counter}"
        if isinstance(guard, UniqueGuard):
            collect_name, _ = self._collect_node_for(
                AttrRef("syn", occurrence.element_type, guard.member),
                _SelfParent(occurrence))
            fields = self.graph.nodes[collect_name].output_columns
            value_columns = ", ".join(f'"{f}"' for f in fields
                                      if f != "__group")
            sql = (f"SELECT __group, {value_columns}, COUNT(*) AS n "
                   f"FROM {{{collect_name}}} "
                   f"GROUP BY __group, {value_columns} HAVING COUNT(*) > 1 "
                   f"LIMIT 1")
            inputs = (collect_name,)
        else:
            assert isinstance(guard, SubsetGuard)
            left_name, _ = self._collect_node_for(
                AttrRef("syn", occurrence.element_type, guard.left),
                _SelfParent(occurrence))
            right_name, _ = self._collect_node_for(
                AttrRef("syn", occurrence.element_type, guard.right),
                _SelfParent(occurrence))
            left_fields = [f for f in self.graph.nodes[left_name]
                           .output_columns if f != "__group"]
            conditions = " AND ".join(
                [f'l."{f}" = r."{f}"' for f in left_fields]
                + ["l.__group = r.__group"])
            first = left_fields[0]
            sql = (f"SELECT l.* FROM {{{left_name}}} l "
                   f"LEFT JOIN {{{right_name}}} r ON {conditions} "
                   f'WHERE r."{first}" IS NULL AND l."{first}" IS NOT NULL '
                   f"LIMIT 1")
            inputs = (left_name, right_name)
        node = QueryNode(name=name, source=MEDIATOR_NAME, kind="guard",
                         raw_sql=sql, inputs=inputs,
                         output_columns=("violation",))
        node.guard = guard
        self.graph.add(node)


class _SelfParent:
    """Adapter: lets ``_collect_node_for`` expand a syn member of
    ``occurrence`` itself by presenting it as a child of a pseudo-parent."""

    def __init__(self, occurrence: Occurrence):
        self._occurrence = occurrence
        self.anchor = occurrence.anchor
        self.path = occurrence.path

    def child(self, element_type: str) -> Occurrence:
        assert element_type == self._occurrence.element_type
        return self._occurrence


class _ContextJoins:
    """Tracks the anchor-chain tables a rewritten query must join."""

    def __init__(self, anchor: Occurrence):
        self.anchor = anchor
        self.needed: list[Occurrence] = []   # chain from anchor upward
        self.used = False

    def ensure_anchor(self) -> None:
        if self.anchor.parent is not None:
            self.used = True
            if not self.needed:
                self.needed = [self.anchor]

    def alias_for(self, occurrence: Occurrence) -> str:
        """Alias of ``occurrence``'s table, extending the chain as needed."""
        if occurrence.parent is None:
            raise CompilationError("root has no context table")
        self.used = True
        if not self.needed:
            self.needed = [self.anchor]
        while occurrence not in self.needed:
            deepest = self.needed[-1]
            parent = deepest.parent
            if parent is None:
                raise CompilationError(
                    f"{occurrence.path} is not an ancestor anchor")
            self.needed.append(parent.anchor)
        index = self.needed.index(occurrence)
        return CONTEXT_ALIAS if index == 0 else f"{CONTEXT_ALIAS}{index}"

    def from_items(self, builder: _Builder):
        items = []
        for index, occurrence in enumerate(self.needed):
            alias = CONTEXT_ALIAS if index == 0 else f"{CONTEXT_ALIAS}{index}"
            table = builder.plan.table_of[occurrence.path]
            columns = builder.graph.nodes[table].output_columns
            items.append((TempTable(table, alias, columns), table))
        return items

    def join_predicates(self):
        predicates = []
        for index in range(len(self.needed) - 1):
            child_alias = (CONTEXT_ALIAS if index == 0
                           else f"{CONTEXT_ALIAS}{index}")
            parent_alias = f"{CONTEXT_ALIAS}{index + 1}"
            predicates.append(Comparison(
                ColumnRef(child_alias, "__parent"), "=",
                ColumnRef(parent_alias, "__id")))
        return predicates


def _sql_literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, (int, float)):
        return str(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
