"""Cost evaluation (Section 5.2).

Two layers:

* :class:`CostModel` — the per-query "costing API" the paper assumes every
  source provides: ``eval_cost(Q)`` (seconds) and ``size(Q)`` (bytes),
  derived here from table statistics with System-R-style selectivities, so
  estimates are deterministic and benchmarks reproducible.  Estimation runs
  once over the whole graph in topological order, since a query that
  references the results of other queries needs their cardinality estimates
  as inputs — exactly the paper's "the API is able to accept cost estimates
  of Q' (e.g., cardinality information) as inputs".

* :func:`plan_cost` — the paper's ``comp_time`` recursion and ``cost(P)``:
  the completion time of each query is its evaluation cost plus the later of
  (a) the completion of its predecessor on the same source and (b) the
  arrival of its inputs, priced by ``trans_cost``; the plan's response time
  is the maximum completion (including the final shipment of
  tagging-relevant outputs to the mediator), computed by dynamic programming
  in at most quadratic time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.relational.network import Network
from repro.relational.source import MEDIATOR_NAME
from repro.relational.statistics import StatisticsCatalog
from repro.sqlq.ast import (
    BaseTable,
    ColumnRef,
    Comparison,
    InSet,
    Literal,
    Param,
    Query,
    SetParamTable,
    TempTable,
)

#: Calibration constants (seconds), sized for the paper's 2003-era setting
#: (DB2 behind a middleware, 1 Mbps links): QUERY_OVERHEAD covers "opening a
#: connection, parsing and preparing the statement"; PER_INPUT_ROW prices
#: populating a query's input temp tables through the middleware (dynamic
#: INSERTs — the dominant per-row cost, and the one merged queries avoid for
#: inlined intermediates); PER_OUTPUT_ROW prices fetching/serializing a
#: result row.  Local SQLite has none of these costs, so the simulated clock
#: adds them explicitly from actual row counts.
QUERY_OVERHEAD = 0.25
PER_INPUT_ROW = 5e-4
PER_OUTPUT_ROW = 1e-4
DEFAULT_COLUMN_BYTES = 8.0


@dataclass
class NodeEstimate:
    """Estimated output of one QDG node."""

    cardinality: float
    row_bytes: float
    eval_seconds: float
    distinct: dict[str, float] = field(default_factory=dict)

    @property
    def size_bytes(self) -> float:
        return self.cardinality * self.row_bytes

    def distinct_count(self, column: str) -> float:
        value = self.distinct.get(column, self.cardinality)
        return max(1.0, min(value, max(self.cardinality, 1.0)))


class CostModel:
    """Derives per-node estimates for a query dependency graph."""

    def __init__(self, stats: StatisticsCatalog,
                 overhead: float = QUERY_OVERHEAD,
                 per_input_row: float = PER_INPUT_ROW,
                 per_output_row: float = PER_OUTPUT_ROW,
                 feedback=None):
        self.stats = stats
        self.overhead = overhead
        self.per_input_row = per_input_row
        self.per_output_row = per_output_row
        #: Optional :class:`~repro.obs.feedback.CostFeedbackStore`: when
        #: set, nodes the store has measured before are estimated from
        #: their across-run EWMA instead of the statistics model.
        self.feedback = feedback

    # ------------------------------------------------------------------
    def estimate_graph(self, graph) -> dict[str, NodeEstimate]:
        """Estimate every node, in topological order."""
        estimates: dict[str, NodeEstimate] = {}
        for node in graph.topological_order():
            estimates[node.name] = self.estimate_node(graph, node, estimates)
        return estimates

    def estimate_node(self, graph, node,
                      estimates: dict[str, NodeEstimate]) -> NodeEstimate:
        if getattr(node, "members", None):
            return self.estimate_merged(node, estimates)
        if node.query is not None:
            estimate = self._estimate_query(node.query, estimates)
        else:
            estimate = self._estimate_raw(node, estimates)
        return self._apply_feedback(node, estimate)

    def _apply_feedback(self, node, estimate: NodeEstimate) -> NodeEstimate:
        """Replace a model-derived estimate with measured feedback.

        Measured rows/bytes/seconds come from
        :meth:`repro.obs.feedback.CostFeedbackStore.correction`, keyed by
        the node's structural fingerprint — so a trial merged group built
        by Algorithm Merge is corrected exactly when an identical group
        executed before.  Idempotent: the correction is a function of the
        node alone, so applying it from both :meth:`estimate_node` and
        :meth:`estimate_merged` cannot compound.
        """
        if self.feedback is None:
            return estimate
        measured = self.feedback.correction(node)
        if measured is None:
            return estimate
        rows = max(float(measured["rows"]), 0.0)
        row_bytes = float(measured["bytes"]) / max(rows, 1.0)
        seconds = max(float(measured["seconds"]), 0.0)
        return NodeEstimate(rows, row_bytes, seconds,
                            dict(estimate.distinct))

    def estimate_merged(self, node,
                        estimates: dict[str, NodeEstimate]) -> NodeEstimate:
        """A merged node: overhead paid once, member work summed, and the
        input-materialization cost of *internal* edges discounted — inlined
        members read each other as CTEs, so those intermediate results are
        never populated into temp tables (the size-dependent benefit of
        dependent-pair merging, Section 5.4)."""
        member_names = {member.name for member in node.members}
        work = 0.0
        seen_externals: set[str] = set()
        for member in node.members:
            work += max(estimates[member.name].eval_seconds - self.overhead,
                        0.0)
            for input_name in member.inputs:
                if input_name in estimates:
                    card = estimates[input_name].cardinality
                else:
                    card = 0.0
                if input_name in member_names:
                    work -= self.per_input_row * card  # inlined as a CTE
                elif input_name in seen_externals:
                    work -= self.per_input_row * card  # materialized once
                else:
                    seen_externals.add(input_name)
        cardinality = sum(estimates[member.name].cardinality
                          for member in node.members)
        row_bytes = max(estimates[member.name].row_bytes
                        for member in node.members)
        return self._apply_feedback(
            node, NodeEstimate(cardinality, row_bytes,
                               self.overhead + max(work, 0.0)))

    # ------------------------------------------------------------------
    def _estimate_query(self, query: Query,
                        estimates: dict[str, NodeEstimate]) -> NodeEstimate:
        cards: dict[str, float] = {}
        distincts: dict[str, dict[str, float]] = {}
        widths: dict[str, float] = {}
        base_stats: dict[str, object] = {}
        for item in query.from_items:
            if isinstance(item, BaseTable):
                table_stats = self.stats.table(item.source, item.relation)
                cards[item.alias] = max(1.0, table_stats.cardinality)
                distincts[item.alias] = {
                    column: table_stats.distinct_count(column)
                    for column in table_stats.distinct}
                widths[item.alias] = table_stats.avg_row_bytes
                base_stats[item.alias] = table_stats
            elif isinstance(item, TempTable):
                producer = estimates.get(item.producer)
                if producer is None:
                    raise PlanError(
                        f"estimating a query before its input "
                        f"{item.producer!r}")
                cards[item.alias] = max(1.0, producer.cardinality)
                distincts[item.alias] = dict(producer.distinct)
                widths[item.alias] = producer.row_bytes
            else:
                assert isinstance(item, SetParamTable)
                cards[item.alias] = 100.0  # unresolved set parameter
                distincts[item.alias] = {}
                widths[item.alias] = 3 * DEFAULT_COLUMN_BYTES

        def distinct_of(ref: ColumnRef) -> float:
            return max(1.0, distincts.get(ref.table, {}).get(
                ref.column, cards.get(ref.table, 100.0)))

        cardinality = 1.0
        for alias_card in cards.values():
            cardinality *= alias_card
        input_rows = sum(cards.values())

        for predicate in query.where:
            if isinstance(predicate, Comparison) and predicate.op == "=":
                left, right = predicate.left, predicate.right
                if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
                    if left.table != right.table:
                        cardinality /= max(distinct_of(left),
                                           distinct_of(right))
                    else:
                        cardinality *= 0.1
                elif isinstance(left, ColumnRef):
                    cardinality *= self._equality_selectivity(
                        left, right, base_stats, distinct_of)
                elif isinstance(right, ColumnRef):
                    cardinality *= self._equality_selectivity(
                        right, left, base_stats, distinct_of)
            elif isinstance(predicate, Comparison):
                cardinality *= 0.3  # range predicate heuristic
            else:
                assert isinstance(predicate, InSet)
                cardinality *= 0.5
        cardinality = max(cardinality, 0.0)

        output_distinct: dict[str, float] = {}
        row_bytes = 2.0
        for item in query.select:
            if isinstance(item.expr, ColumnRef):
                output_distinct[item.alias] = min(distinct_of(item.expr),
                                                  max(cardinality, 1.0))
            else:
                output_distinct[item.alias] = 1.0
            row_bytes += DEFAULT_COLUMN_BYTES
        if query.distinct:
            bound = 1.0
            for value in output_distinct.values():
                bound *= value
            cardinality = min(cardinality, bound)

        eval_seconds = (self.overhead
                        + self.per_input_row * input_rows
                        + self.per_output_row * cardinality)
        return NodeEstimate(cardinality, row_bytes, eval_seconds,
                            output_distinct)

    def _equality_selectivity(self, column: ColumnRef, other,
                              base_stats: dict, distinct_of) -> float:
        """Selectivity of ``column = <constant/param>``.

        Known constants consult the MCV statistics when present (a popular
        value selects far more rows than 1/V); parameters, whose value is
        unknown at planning time, keep the uniform assumption.
        """
        stats = base_stats.get(column.table)
        if isinstance(other, Literal) and stats is not None:
            return stats.equality_selectivity(column.column, other.value)
        return 1.0 / distinct_of(column)

    def _estimate_raw(self, node,
                      estimates: dict[str, NodeEstimate]) -> NodeEstimate:
        """Collect/guard nodes: union of inputs / tiny check output."""
        input_cards = [estimates[name].cardinality for name in node.inputs
                       if name in estimates]
        total = sum(input_cards) if input_cards else 1.0
        if node.kind == "guard":
            cardinality = 1.0
        else:
            cardinality = total
        row_bytes = 2.0 + DEFAULT_COLUMN_BYTES * max(
            len(node.output_columns), 1)
        eval_seconds = (self.overhead / 5  # mediator-local, no round trip
                        + self.per_input_row * total
                        + self.per_output_row * cardinality)
        return NodeEstimate(cardinality, row_bytes, eval_seconds)


# ----------------------------------------------------------------------
# plan cost: comp_time and cost(P)
# ----------------------------------------------------------------------
def plan_cost(graph, plan, estimates: dict[str, NodeEstimate],
              network: Network) -> float:
    """The paper's ``cost(P)``: response time of an execution plan.

    ``plan`` maps each source to its ordered query sequence (node names).
    Every node's output additionally ships to the mediator when the tagging
    phase needs it (``ship_to_mediator``), and that final transfer is part
    of the response time.
    """
    completion: dict[str, float] = {}
    position: dict[str, tuple[str, int]] = {}
    for source, sequence in plan.items():
        for index, name in enumerate(sequence):
            position[name] = (source, index)

    ordered = graph.topological_order()
    # Iterate until fixed: a node is computable when its deps and its
    # same-source predecessor are done.  Scheduling consistency with the
    # graph is required, so a single pass in a merged order suffices.
    pending = {node.name: node for node in ordered}
    progressed = True
    while pending and progressed:
        progressed = False
        for name in list(pending):
            node = pending[name]
            source, index = position[name]
            if index > 0:
                predecessor = plan[source][index - 1]
                if predecessor in pending:
                    continue
            if any(producer in pending
                   for producer in graph.producer_names(node)):
                continue
            start = 0.0
            if index > 0:
                start = completion[plan[source][index - 1]]
            # Arrival of each input: the producing (possibly merged) node's
            # completion plus shipping of the consumer's slice.
            for input_name in node.inputs:
                producer_name = graph.resolve(input_name)
                if producer_name == node.name:
                    continue
                producer = graph.nodes[producer_name]
                slice_bytes = estimates[input_name].size_bytes \
                    if input_name in estimates \
                    else estimates[producer_name].size_bytes
                arrival = completion[producer_name] + network.trans_cost(
                    producer.source, node.source, slice_bytes)
                start = max(start, arrival)
            completion[name] = start + estimates[name].eval_seconds
            del pending[name]
            progressed = True
    if pending:
        raise PlanError(f"plan is inconsistent with the dependency graph; "
                        f"stuck on {sorted(pending)}")

    response = 0.0
    for node in ordered:
        finish = completion[node.name]
        if node.ship_to_mediator and node.source != MEDIATOR_NAME:
            finish += network.trans_cost(
                node.source, MEDIATOR_NAME,
                estimates[node.name].size_bytes)
        response = max(response, finish)
    return response


