"""Algorithm *Schedule* (Section 5.3, Fig. 8).

Finding the response-time-optimal execution plan is NP-hard even for a
single source (reduction from sequencing to minimize completion time), so
the paper uses list scheduling: each query gets a priority ``ℓevel(Q)`` —
the maximum cost of a path from ``Q`` to a leaf of the dependency graph,
counting evaluation and transfer costs — and each source executes its
queries in decreasing ℓevel order.  Quadratic time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.relational.network import Network
from repro.optimizer.cost import NodeEstimate

#: An execution plan: source name -> ordered node-name sequence.
ExecutionPlan = dict


def levels(graph, estimates: dict[str, NodeEstimate],
           network: Network) -> dict[str, float]:
    """``ℓevel(Q) = eval_cost(Q) + max over consumers Q' of
    (trans_cost(S, S', size(Q)) + ℓevel(Q'))`` — computed in reverse
    topological order (steps 1–6 of Fig. 8)."""
    result: dict[str, float] = {}
    ordered = graph.topological_order()
    consumers: dict[str, list] = {node.name: [] for node in ordered}
    for node in ordered:
        for producer in graph.producer_names(node):
            consumers[producer].append(node)
    for node in reversed(ordered):
        level = 0.0
        size = estimates[node.name].size_bytes
        for consumer in consumers[node.name]:
            transfer = network.trans_cost(node.source, consumer.source, size)
            level = max(level, transfer + result[consumer.name])
        result[node.name] = level + estimates[node.name].eval_seconds
    return result


def schedule(graph, estimates: dict[str, NodeEstimate],
             network: Network) -> ExecutionPlan:
    """Produce per-source query sequences ordered by decreasing ℓevel
    (steps 7–9 of Fig. 8).  Ties break by name for determinism."""
    priority = levels(graph, estimates, network)
    plan: ExecutionPlan = {}
    for node in graph.topological_order():
        plan.setdefault(node.source, []).append(node.name)
    for source, sequence in plan.items():
        sequence.sort(key=lambda name: (-priority[name], name))
        plan[source] = _fix_local_order(graph, sequence)
    return plan


def _fix_local_order(graph, sequence: list[str]) -> list[str]:
    """Ensure the per-source order respects same-source dependencies.

    ℓevel ordering already guarantees this for strict positive costs (a
    producer's ℓevel exceeds its consumer's), but zero-cost ties could
    invert an edge; a stable topological pass repairs that.
    """
    position = {name: index for index, name in enumerate(sequence)}
    indegree = {name: 0 for name in sequence}
    dependents: dict[str, list[str]] = {name: [] for name in sequence}
    for name in sequence:
        for producer in graph.producer_names(graph.nodes[name]):
            if producer in position:
                indegree[name] += 1
                dependents[producer].append(name)
    ready = [position[name] for name in sequence if indegree[name] == 0]
    heapq.heapify(ready)
    result: list[str] = []
    while ready:
        name = sequence[heapq.heappop(ready)]
        result.append(name)
        for consumer in dependents[name]:
            indegree[consumer] -= 1
            if indegree[consumer] == 0:
                heapq.heappush(ready, position[consumer])
    if len(result) != len(sequence):
        # Cross-source cycle would have been caught earlier; give up
        # preserving order rather than loop forever.
        placed = set(result)
        result.extend(name for name in sequence if name not in placed)
    return result


def naive_schedule(graph) -> ExecutionPlan:
    """Baseline for the scheduling ablation: plain topological order with no
    priority — what a scheduler without ℓevel information would do."""
    plan: ExecutionPlan = {}
    for node in graph.topological_order():
        plan.setdefault(node.source, []).append(node.name)
    return plan
