"""Incremental re-evaluation: fingerprints, taint, and result reuse.

The paper's motivating workload (Section 7) re-runs one AIG daily against
sources that change only slightly between runs.  ``Middleware.prepare``
already amortizes *optimization*; this module amortizes *execution and
tagging* across evaluations of the same prepared plan:

* every base relation carries a monotonic **version counter**
  (:meth:`repro.relational.source.DataSource.table_version`), bumped by
  loads and writes, never by temp-table shipments;

* every QDG node gets a **content fingerprint** — a hash over its rendered
  SQL, the root-attribute values it reads, the ``(source, relation,
  version)`` of every base table it scans, and the fingerprints of its
  producers.  Fingerprints chain upstream, so a node whose fingerprint is
  unchanged provably has clean producers all the way down: the clean set
  is a downward-closed cone of the DAG and cached results can be replayed
  in topological order before any query is dispatched;

* **taint** is the complement: a node is tainted when its fingerprint
  differs from the cached one, and taint propagates to all transitive
  consumers (:meth:`~repro.optimizer.qdg.QueryDependencyGraph.taint_cone`).
  Merged nodes (Algorithm Merge) fingerprint over *all* members, so a
  group is tainted — and re-runs whole — iff any member is;

* the **tagging memo** keeps the previous document's subtrees and sort
  indexes, so clean regions of the tree are spliced (deep-copied) instead
  of re-sorted and re-built.  A subtree is spliceable only when every
  query node its content depends on — iteration tables, choice-condition
  tables, and text provenance up to ancestor anchors — is clean and every
  root attribute it prints is unchanged.

Guards re-run whole whenever any of their inputs is tainted (the *full
re-check fallback*: an inclusion constraint spanning a tainted and a clean
region is re-validated over the full collections, never over a delta); a
clean guard replays its cached — and, in abort mode, necessarily empty —
result, so report-mode violations are re-reported identically.

Nothing here is committed on failure: the middleware folds freshly
executed results into the cache only after a fully successful,
non-degraded run, so a mid-run fault can never poison the cache (stale
entries stay valid regardless — their fingerprints no longer match
anything that changed).
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field

from repro.compilation.occurrences import RootValue, TableColumn
from repro.sqlq.ast import BaseTable

#: Sentinel dependency that is never clean — marks subtrees whose text
#: provenance cannot be proven stable (no backing table node).
_NEVER_CLEAN = "__never-clean__"

_ROOT_PLACEHOLDER = re.compile(r"\{root:(\w+)\}")


@dataclass
class CachedNodeResult:
    """One node's cached execution outcome, keyed by its fingerprint."""

    fingerprint: str
    outputs: dict                   # output name -> ResultSet


@dataclass
class TaggingMemo:
    """Tagging-phase state of the last committed run (one per depth).

    ``elements`` maps ``(iteration-occurrence path, row __id)`` to the
    element built for that row — splicing deep-copies these, so a caller
    mutating a returned document does not corrupt later runs.  ``tables``
    and ``condition_tables`` keep the group+sort indexes so clean
    relations skip re-sorting.
    """

    root_inh: dict = field(default_factory=dict)
    elements: dict = field(default_factory=dict)
    tables: dict = field(default_factory=dict)
    condition_tables: dict = field(default_factory=dict)


@dataclass
class TaggingReuse:
    """Reuse directives for one ``build_document`` call."""

    memo: TaggingMemo | None        # previous committed run (None = cold)
    record: TaggingMemo             # collector for this run's memo
    splice_paths: set = field(default_factory=set)
    table_paths: set = field(default_factory=set)
    condition_paths: set = field(default_factory=set)
    spliced: int = 0                # subtree instances grafted
    tables_reused: int = 0          # sort indexes reused


@dataclass
class ResultCache:
    """The middleware's cross-evaluation cache for one unfold depth."""

    entries: dict = field(default_factory=dict)   # node name -> CachedNodeResult
    memo: TaggingMemo | None = None


@dataclass
class IncrementalPlan:
    """What one evaluation may reuse and what it must re-execute."""

    fingerprints: dict              # node name -> fingerprint
    reusable: dict                  # node name -> CachedNodeResult
    tainted: set                    # node names that must execute


def compute_fingerprints(graph, sources, root_inh: dict) -> dict:
    """Content fingerprint per QDG node, in topological order.

    The hash covers everything that determines a node's output: its SQL
    text (AST-rendered or raw), the root-attribute values bound into it,
    the versions of the base relations it scans, and — transitively, via
    the producers' fingerprints — the same for everything upstream.
    """
    fingerprints: dict = {}
    for node in graph.topological_order():
        parts: list = [node.kind, node.source]
        members = getattr(node, "members", None) or (node,)
        for member in members:
            if member.query is not None:
                parts.append(str(member.query))
                for item in member.query.from_items:
                    if isinstance(item, BaseTable):
                        source = sources.get(item.source)
                        version = (source.table_version(item.relation)
                                   if source is not None else -1)
                        parts.append((item.source, item.relation, version))
            if member.raw_sql is not None:
                parts.append(member.raw_sql)
                for name in sorted(set(
                        _ROOT_PLACEHOLDER.findall(member.raw_sql))):
                    parts.append((name, repr(root_inh.get(name))))
            for param, inh_member in sorted(member.root_params.items()):
                parts.append((param, repr(root_inh.get(inh_member))))
        for producer in graph.producer_names(node):
            parts.append(fingerprints[producer])
        digest = hashlib.sha256(repr(parts).encode()).hexdigest()
        fingerprints[node.name] = digest
    return fingerprints


def structural_fingerprint(node) -> str:
    """Version- and value-*independent* hash of one QDG node's shape.

    Unlike :func:`compute_fingerprints`, this covers only what the node
    *is* — kind, source, member names, SQL text, input names — never what
    the data currently holds (no table versions, no root-attribute
    values, no producer chaining).  Two evaluations of the same prepared
    plan therefore key identical nodes identically even after source
    updates, which is exactly what the cost-feedback store
    (:mod:`repro.obs.feedback`) and the run ledger need: measured costs
    accumulate across runs of the same plan.
    """
    parts: list = [node.kind, node.source]
    members = getattr(node, "members", None) or (node,)
    for member in members:
        parts.append(member.name)
        if member.query is not None:
            parts.append(str(member.query))
        if member.raw_sql is not None:
            parts.append(member.raw_sql)
        parts.append(tuple(member.inputs))
    return hashlib.sha256(repr(parts).encode()).hexdigest()


def plan_fingerprint(graph) -> str:
    """Structural hash of a whole QDG: the plan's identity across runs.

    Folds every node's :func:`structural_fingerprint` in topological
    order, so ledger records from repeated evaluations of one AIG carry
    the same ``plan_fingerprint`` and can be joined by it.
    """
    parts = [structural_fingerprint(node)
             for node in graph.topological_order()]
    return hashlib.sha256(repr(parts).encode()).hexdigest()


def aig_fingerprint(aig) -> str:
    """Structural hash of a whole AIG *specification*.

    Covers everything that shapes compilation — DTD productions and root,
    attribute schemas, rules, guards, constraints, internal states, and
    the catalog's source schemas — and nothing about the data.  Two
    structurally identical AIG objects (e.g. rebuilt from the same fuzz
    :class:`~repro.fuzz.spec.ScenarioSpec`, or registered by two tenants)
    fingerprint identically, which is how the evaluation service
    (:mod:`repro.service`) keys shared ``Middleware`` instances.
    """
    parts: list = ["dtd-root", aig.dtd.root]
    for element_type in sorted(aig.dtd.productions):
        parts.append((element_type, repr(aig.dtd.productions[element_type])))
    parts.append("inh")
    for element_type in sorted(aig.inh_schemas):
        parts.append((element_type, repr(aig.inh_schemas[element_type])))
    parts.append("syn")
    for element_type in sorted(aig.syn_schemas):
        parts.append((element_type, repr(aig.syn_schemas[element_type])))
    parts.append("rules")
    for element_type in sorted(aig.rules):
        parts.append((element_type, repr(aig.rules[element_type])))
    parts.append("guards")
    for element_type in sorted(aig.guards):
        parts.append((element_type,
                      tuple(repr(guard)
                            for guard in aig.guards[element_type])))
    parts.append("constraints")
    parts.extend(repr(constraint) for constraint in aig.constraints)
    parts.append("internal")
    parts.extend(sorted(aig.internal_states))
    parts.append("catalog")
    for name in sorted(aig.catalog.source_names):
        parts.append(repr(aig.catalog.source(name)))
    return hashlib.sha256(repr(parts).encode()).hexdigest()


def plan_increment(graph, entries: dict, fingerprints: dict
                   ) -> IncrementalPlan:
    """Split the graph into a reusable (clean) set and a tainted cone.

    Directly tainted nodes are those whose fingerprint differs from the
    cached entry (or that have no entry); the tainted set is their
    downstream closure over the graph.  Fingerprint chaining makes the
    closure redundant in theory — a consumer of a changed producer hashes
    differently by construction — but computing it through
    :meth:`~repro.optimizer.qdg.QueryDependencyGraph.taint_cone` keeps
    the invariant explicit and collision-proof: a reused node's producers
    are always reused too.
    """
    direct = set()
    for name in graph.nodes:
        entry = entries.get(name)
        if entry is None or entry.fingerprint != fingerprints[name]:
            direct.add(name)
    tainted = graph.taint_cone(direct)
    reusable = {name: entries[name] for name in graph.nodes
                if name not in tainted}
    return IncrementalPlan(fingerprints, reusable, tainted)


def index_reuse_paths(graph, tagging_plan, tainted: set
                      ) -> tuple[set, set]:
    """Occurrence paths whose tagging sort/condition indexes are reusable
    (their backing query node is clean)."""
    tables = {path for path, name in tagging_plan.table_of.items()
              if graph.resolve(name) not in tainted}
    conditions = {path for path, name in tagging_plan.condition_of.items()
                  if graph.resolve(name) not in tainted}
    return tables, conditions


def splice_paths_for(graph, tagging_plan, tainted: set, memo, root_inh: dict
                     ) -> set:
    """Iteration-occurrence paths whose subtrees may be spliced whole.

    A path qualifies when *every* query node its subtree's content depends
    on — its own table, nested iteration tables, choice-condition tables,
    and the anchor tables its text provenance reads — is clean, and every
    root attribute printed inside the subtree has the same value as when
    the memo was recorded.  Anything else falls back to a normal rebuild,
    which is always correct.
    """
    if memo is None:
        return set()
    cones: dict = {}
    _subtree_dependencies(tagging_plan, tagging_plan.tree.root, cones)
    paths = set()
    for path in tagging_plan.table_of:
        nodes, members = cones.get(path, ({_NEVER_CLEAN}, set()))
        if _NEVER_CLEAN in nodes:
            continue
        if any(graph.resolve(name) in tainted for name in nodes):
            continue
        if any(memo.root_inh.get(member) != root_inh.get(member)
               for member in members):
            continue
        paths.add(path)
    return paths


def _subtree_dependencies(plan, occurrence, cones: dict):
    """Bottom-up (query nodes, root members) each subtree's content reads."""
    nodes: set = set()
    members: set = set()
    path = occurrence.path
    table_node = plan.table_of.get(path)
    if table_node is not None:
        nodes.add(table_node)
    condition_node = plan.condition_of.get(path)
    if condition_node is not None:
        nodes.add(condition_node)
    provenance = plan.text_of.get(path)
    if isinstance(provenance, RootValue):
        members.add(provenance.member)
    elif isinstance(provenance, TableColumn):
        anchor_table = plan.table_of.get(provenance.occurrence.path)
        nodes.add(anchor_table if anchor_table is not None
                  else _NEVER_CLEAN)
    for child in occurrence.children:
        child_nodes, child_members = _subtree_dependencies(plan, child,
                                                           cones)
        nodes |= child_nodes
        members |= child_members
    cones[path] = (nodes, members)
    return nodes, members
