"""The execution phase (Section 5.1): run an optimized plan.

The engine walks the execution plan source by source: a query runs as soon
as its inputs are available and its predecessor on the same source has
finished; its output is cached at the mediator (every result ships there —
the mediator is the router and the tagging phase's data store) and shipped
on to dependent sources as needed.  Queries execute for real against the
per-source SQLite databases; communication is priced by the
:class:`~repro.relational.network.Network` simulator using the *actual*
byte sizes of the shipped tables, and the reported response time combines
measured evaluation times with simulated transfer times on the paper's
``comp_time`` recursion.

Merged nodes (Algorithm Merge) render as a single statement — CTEs for the
members in dependency order, outer-unioned with a ``__tag`` discriminator —
and the result is split back into per-member cached tables, so consumers and
the tagging phase are oblivious to merging.

Guard nodes run at the mediator; a non-empty guard result aborts the run
with :class:`~repro.errors.EvaluationAborted`.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.errors import EvaluationAborted, EvaluationError, PlanError
from repro.obs.tracer import NULL_TRACER
from repro.relational.network import Network
from repro.relational.source import (
    BatchedResultSet,
    DataSource,
    MEDIATOR_NAME,
    Mediator,
    ResultSet,
    intern_columns,
    iter_result_rows,
)
from repro.sqlq.analyze import temp_inputs
from repro.sqlq.render import InlineTable, render_sqlite

#: Hidden row-identity column appended to every cached table.
ID_COLUMN = "__id"

#: Upper bound on rows inlined as a literal row set when a target
#: backend cannot receive shipped temp tables (docs/BACKENDS.md).  Inline
#: SQL grows linearly with the shipment and engines cap expression/query
#: sizes, so an oversized ship fails fast with a clear error instead of
#: producing a megabyte statement.
INLINE_SHIP_ROW_CAP = 5000

logger = logging.getLogger("repro.engine")


@dataclass
class NodeTiming:
    """Timing record for one executed node.

    Built from the node's execution span (:mod:`repro.obs.tracer`), so the
    span model is the single timing source of truth; the two trailing
    fields were added for cost-model calibration and default to zero for
    backward compatibility.
    """

    name: str
    source: str
    eval_seconds: float           # measured SQLite execution time
    completion: float             # simulated completion on the clock
    output_rows: int
    output_bytes: int
    rows_materialized: int = 0    # input rows shipped into temp tables
    overhead_seconds: float = 0.0  # modeled deployment cost applied


@dataclass
class EngineResult:
    """Everything the execution phase produced."""

    cache: dict[str, ResultSet]            # node name -> cached output
    timings: dict[str, NodeTiming]
    response_time: float                   # simulated total (Section 5.2)
    measured_seconds: float                # wall clock actually spent
    queries_executed: int = 0
    bytes_shipped: int = 0
    violations: list = field(default_factory=list)
    #: Sum of per-node execution time (what a one-at-a-time run would have
    #: spent) divided by the measured wall time of this run.
    parallel_speedup: float = 1.0
    workers: int = 1
    #: :class:`~repro.resilience.report.FailureReport` of a degraded run
    #: (None when every node executed).
    failure_report: object = None
    #: Incremental re-evaluation (docs/INCREMENTAL.md): nodes replayed
    #: from the cross-evaluation cache instead of executing.
    reused_nodes: int = 0
    #: Fresh :class:`~repro.runtime.incremental.CachedNodeResult` entries
    #: for the nodes that *did* execute this run — the middleware commits
    #: them to its cache only after a fully successful run.
    cache_entries: dict = field(default_factory=dict)


class Engine:
    """Executes a query dependency graph under an execution plan."""

    #: Class-level default so partially constructed engines (tests build
    #: them via ``__new__`` to exercise single methods) still trace as
    #: no-ops.
    tracer = NULL_TRACER

    def __init__(self, graph, plan: dict, sources: dict[str, DataSource],
                 network: Network, mediator: Mediator | None = None,
                 query_overhead: float | None = None,
                 mediator_overhead: float = 0.01,
                 per_input_row_seconds: float | None = None,
                 per_output_row_seconds: float | None = None,
                 dynamic_scheduler=None,
                 violation_mode: str = "abort",
                 workers: int | str = 1,
                 emulate_overheads: bool = False,
                 tracer=None,
                 retry_policy=None,
                 breakers=None,
                 on_source_failure: str = "abort",
                 deadline: float | None = None,
                 tagging_plan=None,
                 reuse: dict | None = None,
                 fingerprints: dict | None = None,
                 preleased: dict | None = None):
        from repro.optimizer.cost import (PER_INPUT_ROW, PER_OUTPUT_ROW,
                                          QUERY_OVERHEAD)
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.graph = graph
        self.plan = plan
        self.sources = dict(sources)
        self.mediator = mediator or Mediator()
        self.sources[MEDIATOR_NAME] = self.mediator
        self.network = network
        # The simulated clock combines the measured SQLite time with modeled
        # per-query costs of the paper's distributed deployment, computed
        # from *actual* row counts: dispatch overhead ("opening a connection,
        # parsing and preparing the statement"), input temp-table population
        # ("temporary tables may have to be created and populated with
        # inputs"), and result fetching.  Local SQLite has none of these, so
        # without them the 1 Mbps network would be the only cost and merging
        # could show no evaluation-side benefit.  Mediator-resident work
        # pays only a small statement overhead (no network dispatch).
        self.query_overhead = (QUERY_OVERHEAD if query_overhead is None
                               else query_overhead)
        self.mediator_overhead = mediator_overhead
        self.per_input_row = (PER_INPUT_ROW if per_input_row_seconds is None
                              else per_input_row_seconds)
        self.per_output_row = (PER_OUTPUT_ROW
                               if per_output_row_seconds is None
                               else per_output_row_seconds)
        #: When set (see repro.runtime.dynamic), the static per-source order
        #: of ``plan`` is ignored: after every completion the scheduler
        #: re-ranks the ready queries using actual output sizes.
        self.dynamic_scheduler = dynamic_scheduler
        if violation_mode not in ("abort", "report"):
            raise PlanError(f"violation_mode must be 'abort' or 'report', "
                            f"got {violation_mode!r}")
        self.violation_mode = violation_mode
        self.workers = workers
        self.emulate_overheads = emulate_overheads
        #: Resilience (see :mod:`repro.resilience`): a
        #: :class:`~repro.resilience.retry.RetryPolicy` retries transient
        #: per-node failures; ``breakers`` (a
        #: :class:`~repro.resilience.breaker.BreakerBoard`) is consulted by
        #: the lane dispatcher before dispatch; ``deadline`` bounds each
        #: statement's wall time; ``on_source_failure="degrade"`` skips
        #: DTD-optional subtrees of a dead source instead of aborting
        #: (requires ``tagging_plan`` to prove optionality).
        if on_source_failure not in ("abort", "degrade"):
            raise PlanError(f"on_source_failure must be 'abort' or "
                            f"'degrade', got {on_source_failure!r}")
        self.retry_policy = retry_policy
        self.breakers = breakers
        self.on_source_failure = on_source_failure
        self.deadline = deadline
        self.tagging_plan = tagging_plan
        #: Incremental re-evaluation (docs/INCREMENTAL.md): ``reuse`` maps
        #: clean node names to their cached results (replayed instead of
        #: executed); ``fingerprints`` holds this run's per-node content
        #: fingerprints so fresh results can be cached for the next run.
        self.reuse = reuse or {}
        self.fingerprints = fingerprints
        #: Connections already leased by the caller (``source name ->
        #: connection``) — the executor uses them without acquiring or
        #: releasing; ``evaluate_batch`` leases the mediator's once for a
        #: whole batch.
        self.preleased = dict(preleased) if preleased else {}
        self._physical: dict[str, str] = {}
        self._physical_counter = 0

    def breaker_for(self, source_name: str):
        """The circuit breaker guarding ``source_name`` (None when breakers
        are disabled; the mediator is never guarded — it is in-process)."""
        if self.breakers is None or source_name == MEDIATOR_NAME:
            return None
        return self.breakers.breaker_for(source_name)

    # ------------------------------------------------------------------
    def run(self, root_inh: dict) -> EngineResult:
        """Execute the plan (see :mod:`repro.runtime.executor`).

        ``workers=1`` runs the event-driven coordinator inline — one node
        at a time, deterministically.  ``workers>1`` (or ``"auto"``) runs
        one worker lane per data source so independent sources overlap;
        the simulated clock is computed from completion events either way.
        """
        from repro.runtime.executor import PlanExecutor
        return PlanExecutor(self).run(root_inh)

    # ------------------------------------------------------------------
    def modeled_overhead(self, node, rows_materialized: int,
                         output_rows: int) -> float:
        """Modeled per-query deployment cost added to the simulated clock."""
        if node.source == MEDIATOR_NAME:
            return self.mediator_overhead
        return (self.query_overhead
                + self.per_input_row * rows_materialized
                + self.per_output_row * output_rows)

    def _member_names(self, node) -> list[str]:
        members = getattr(node, "members", None)
        if members:
            return [member.name for member in members]
        return [node.name]

    def _execute(self, node, cache: dict[str, ResultSet], root_inh: dict,
                 connection=None, shipped: dict | None = None
                 ) -> tuple[float, dict[str, ResultSet], int]:
        """Run one node.

        Returns ``(measured seconds, outputs per name, rows materialized)``.
        ``connection`` selects a leased per-lane connection (concurrent
        execution); ``shipped`` is the run's ship-once registry mapping
        ``(source, input)`` to an already-landed temp table.
        """
        source = self.sources.get(node.source)
        if source is None:
            raise EvaluationError(f"no data source named {node.source!r}")
        if getattr(node, "members", None):
            return self._execute_merged(node, source, cache, root_inh,
                                        connection, shipped)
        if node.raw_sql is not None:
            return self._execute_raw(node, source, cache, root_inh,
                                     connection)
        return self._execute_query(node, source, cache, root_inh,
                                   connection, shipped)

    # -- plain AST queries ---------------------------------------------
    def _execute_query(self, node, source, cache, root_inh,
                       connection=None, shipped=None):
        with self.tracer.span("materialize", "ship",
                              node=node.name) as materialize_span:
            bindings, rows_materialized = self._materialize_inputs(
                node.inputs, source, cache, connection, shipped)
        materialize_seconds = materialize_span.duration
        scalar_values = {param: root_inh[member]
                         for param, member in node.root_params.items()}
        sql, params = render_sqlite(node.query, scalar_values, bindings)
        result = source.execute(sql, tuple(params), connection=connection,
                                deadline=self.deadline)
        if node.kind == "condition":
            result = _normalize_condition(result, node.name)
        output = _with_ids(result)
        elapsed = source.last_execution_seconds + materialize_seconds
        return elapsed, {node.name: output}, rows_materialized

    # -- mediator raw SQL (collect / guard nodes) ------------------------
    def _execute_raw(self, node, source, cache, root_inh, connection=None):
        sql = node.raw_sql
        for input_name in node.inputs:
            physical = self._cache_table(input_name, cache, connection)
            sql = sql.replace(f"{{{input_name}}}", f'"{physical}"')
        for member, value in root_inh.items():
            sql = sql.replace(f"{{root:{member}}}", _sql_literal(value))
        result = self.mediator.execute(sql, connection=connection,
                                       deadline=self.deadline)
        output = _with_ids(result)
        return self.mediator.last_execution_seconds, {node.name: output}, 0

    # -- merged nodes -----------------------------------------------------
    def _execute_merged(self, node, source, cache, root_inh,
                        connection=None, shipped=None):
        members = self._topo_members(node)
        external_inputs = [name for name in node.inputs]
        with self.tracer.span("materialize", "ship",
                              node=node.name) as materialize_span:
            bindings, rows_materialized = self._materialize_inputs(
                external_inputs, source, cache, connection, shipped)
        materialize_seconds = materialize_span.duration
        member_names = {member.name for member in members}
        cte_names = {member.name: f"__m{index}"
                     for index, member in enumerate(members)}

        with_parts: list[str] = []
        all_params: list[object] = []
        widths = [len(member.output_columns) for member in members]
        total_width = max(widths)
        union_parts: list[str] = []
        for member in members:
            member_bindings = dict(bindings)
            for input_name in member.inputs:
                if input_name in member_names:
                    member_bindings[input_name] = cte_names[input_name]
            scalar_values = {param: root_inh[mem]
                             for param, mem in member.root_params.items()}
            sql, params = render_sqlite(member.query, scalar_values,
                                        member_bindings)
            # Members that other members inline need the __id path-encoding
            # column *inside* the statement; assigning it via ROW_NUMBER and
            # carrying it through the union keeps the cached slices and the
            # in-statement references consistent.
            with_parts.append(
                f"{cte_names[member.name]} AS "
                f"(SELECT *, ROW_NUMBER() OVER () AS {ID_COLUMN} "
                f"FROM ({sql}))")
            all_params.extend(params)
            columns = [f'"{c}"' for c in member.output_columns]
            padding = ["NULL"] * (total_width - len(columns))
            select_list = ", ".join(
                [f"'{member.name}' AS __tag"] + columns + padding
                + [f'"{ID_COLUMN}"'])
            union_parts.append(
                f"SELECT {select_list} FROM {cte_names[member.name]}")
        statement = ("WITH " + ", ".join(with_parts) + " "
                     + " UNION ALL ".join(union_parts))
        result = source.execute(statement, tuple(all_params),
                                connection=connection,
                                deadline=self.deadline)
        elapsed = source.last_execution_seconds + materialize_seconds

        outputs: dict[str, ResultSet] = {}
        for member in members:
            arity = len(member.output_columns)
            rows = [row[1:arity + 1] + (row[-1],)
                    for row in iter_result_rows(result)
                    if row[0] == member.name]
            slice_result = ResultSet(
                intern_columns(list(member.output_columns) + [ID_COLUMN]),
                rows)
            if member.kind == "condition":
                slice_result = _normalize_condition(slice_result,
                                                    member.name)
            outputs[member.name] = slice_result
        # The merged node itself needs a cache entry so bookkeeping works.
        outputs[node.name] = ResultSet(["__tag"],
                                       [(m.name,) for m in members])
        return elapsed, outputs, rows_materialized

    def _topo_members(self, node):
        members = list(node.members)
        names = {member.name for member in members}
        ordered = []
        placed: set[str] = set()
        while members:
            for member in members:
                internal = [i for i in member.inputs if i in names]
                if all(i in placed for i in internal):
                    ordered.append(member)
                    placed.add(member.name)
                    members.remove(member)
                    break
            else:
                raise PlanError(f"merged node {node.name!r} has a cycle "
                                f"among members")
        return ordered

    # ------------------------------------------------------------------
    def _materialize_inputs(self, input_names, source, cache,
                            connection=None, shipped: dict | None = None
                            ) -> tuple[dict[str, str], int]:
        """Create local temp tables for a node's inputs.

        Returns ``(bindings, rows materialized)``.  With a ``shipped``
        registry, a result already landed at this source is reused instead
        of re-created (ship-once); the *modeled* per-input-row charge still
        counts every consumer, so the simulated clock is unchanged.

        When the target source's backend cannot receive temp tables
        (``capabilities.supports_temp_tables=False``), the ship is
        rewritten instead of landed: the input binds as an
        :class:`~repro.sqlq.render.InlineTable`, which the renderer turns
        into a literal derived table (or a literal IN-list for set
        predicates).  Rewrites are capped at :data:`INLINE_SHIP_ROW_CAP`
        rows and counted in the ``ship_rewrites`` /
        ``ship_rewrite_rows`` metrics (docs/BACKENDS.md).
        """
        bindings: dict[str, str] = {}
        rows_materialized = 0
        metrics = self.tracer.metrics
        temp_tables_ok = (source.name == MEDIATOR_NAME
                          or getattr(source, "capabilities",
                                     None) is None
                          or source.capabilities.supports_temp_tables)
        for input_name in input_names:
            if input_name not in cache:
                raise PlanError(f"input {input_name!r} not yet available")
            result = cache[input_name]
            if source.name == MEDIATOR_NAME:
                bindings[input_name] = self._cache_table(input_name, cache,
                                                         connection)
            elif not temp_tables_ok:
                # Inline-literal rewrite: no table lands at the source, so
                # there is nothing to ship-once; the modeled per-input-row
                # charge still counts every consumer.
                rows = list(iter_result_rows(result))
                if len(rows) > INLINE_SHIP_ROW_CAP:
                    raise EvaluationError(
                        f"input {input_name!r} has {len(rows)} rows but "
                        f"source {source.name!r} (backend "
                        f"{source.capabilities.backend!r}) cannot receive "
                        f"temp tables and the inline rewrite is capped at "
                        f"{INLINE_SHIP_ROW_CAP} rows")
                rows_materialized += len(rows)
                with self.tracer.span(f"ship:{input_name}", "ship",
                                      target=source.name, rows=len(rows),
                                      inline=True):
                    bindings[input_name] = InlineTable(result.columns,
                                                       rows)
                metrics.add("ship_rewrites", 1)
                metrics.add("ship_rewrite_rows", len(rows))
            else:
                rows_materialized += len(result)
                key = (source.name, input_name)
                table = shipped.get(key) if shipped is not None else None
                if table is None:
                    with self.tracer.span(f"ship:{input_name}", "ship",
                                          target=source.name,
                                          rows=len(result)):
                        table = source.create_temp_table(
                            result.columns, iter_result_rows(result),
                            connection=connection)
                    if shipped is not None:
                        shipped[key] = table
                    metrics.add("temp_tables_created", 1)
                    metrics.add("rows_shipped", len(result))
                else:
                    metrics.add("ship_once_reuses", 1)
                bindings[input_name] = table
        return bindings, rows_materialized

    def _cache_table(self, input_name: str, cache, connection=None) -> str:
        """The mediator-resident physical table for a cached result.

        Only the mediator lane calls this (all mediator-resident nodes run
        single-flight there), so ``_physical`` needs no lock.
        """
        if input_name not in self._physical:
            self._physical_counter += 1
            physical = f"cache_{self._physical_counter}"
            with self.tracer.span(f"cache:{input_name}", "ship",
                                  target=MEDIATOR_NAME,
                                  rows=len(cache[input_name])):
                self.mediator.cache_result(physical, cache[input_name],
                                           connection=connection)
            self.tracer.metrics.add("mediator_cache_tables", 1)
            self._physical[input_name] = physical
        return self._physical[input_name]

    def cleanup(self) -> None:
        """Drop this run's mediator-resident cache tables.

        Tagging reads the in-memory result sets, never these tables, so
        dropping them after execution (success *or* failure) leaves the
        mediator's schema as it was found.  Best-effort: a dead mediator
        connection must not mask the run's own outcome.
        """
        physical, self._physical = self._physical, {}
        for table in physical.values():
            try:
                self.mediator.drop_table(table)
            except Exception as error:  # noqa: BLE001 — cleanup only
                logger.debug("mediator cleanup of %r failed: %s",
                             table, error)


def _normalize_condition(result, node_name: str):
    """Coerce a condition node's selector column to int.

    The conceptual semantics reads the selector through ``int(...)``; the
    optimized pipeline's gating joins compare it to integer literals, so the
    cached table must hold real integers (SQLite does not coerce TEXT '2' to
    2 in equality).  Condition tables are tiny (one row per anchor), so a
    batched result is simply materialized first.
    """
    if isinstance(result, BatchedResultSet):
        result = result.materialize()
    if not result.rows:
        return result
    normalized = []
    for row in result.rows:
        selector = row[0]
        try:
            as_int = int(selector)
        except (TypeError, ValueError):
            raise EvaluationError(
                f"condition query {node_name!r} returned non-integer "
                f"{selector!r}") from None
        normalized.append((as_int,) + row[1:])
    return ResultSet(intern_columns(result.columns), normalized)


def _with_ids(result):
    """Append the ``__id`` path-encoding column (unique per table)."""
    if ID_COLUMN in result.columns:
        return result
    if isinstance(result, BatchedResultSet):
        return result.with_id_column(ID_COLUMN)
    columns = intern_columns(result.columns + [ID_COLUMN])
    rows = [row + (index + 1,) for index, row in enumerate(result.rows)]
    return ResultSet(columns, rows)


def _sql_literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, (int, float)):
        return str(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
