"""The execution phase (Section 5.1): run an optimized plan.

The engine walks the execution plan source by source: a query runs as soon
as its inputs are available and its predecessor on the same source has
finished; its output is cached at the mediator (every result ships there —
the mediator is the router and the tagging phase's data store) and shipped
on to dependent sources as needed.  Queries execute for real against the
per-source SQLite databases; communication is priced by the
:class:`~repro.relational.network.Network` simulator using the *actual*
byte sizes of the shipped tables, and the reported response time combines
measured evaluation times with simulated transfer times on the paper's
``comp_time`` recursion.

Merged nodes (Algorithm Merge) render as a single statement — CTEs for the
members in dependency order, outer-unioned with a ``__tag`` discriminator —
and the result is split back into per-member cached tables, so consumers and
the tagging phase are oblivious to merging.

Guard nodes run at the mediator; a non-empty guard result aborts the run
with :class:`~repro.errors.EvaluationAborted`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import EvaluationAborted, EvaluationError, PlanError
from repro.relational.network import Network
from repro.relational.source import (
    DataSource,
    MEDIATOR_NAME,
    Mediator,
    ResultSet,
)
from repro.sqlq.analyze import temp_inputs
from repro.sqlq.render import render_sqlite

#: Hidden row-identity column appended to every cached table.
ID_COLUMN = "__id"


@dataclass
class NodeTiming:
    """Timing record for one executed node."""

    name: str
    source: str
    eval_seconds: float           # measured SQLite execution time
    completion: float             # simulated completion on the clock
    output_rows: int
    output_bytes: int


@dataclass
class EngineResult:
    """Everything the execution phase produced."""

    cache: dict[str, ResultSet]            # node name -> cached output
    timings: dict[str, NodeTiming]
    response_time: float                   # simulated total (Section 5.2)
    measured_seconds: float                # wall clock actually spent
    queries_executed: int = 0
    bytes_shipped: int = 0
    violations: list = field(default_factory=list)


class Engine:
    """Executes a query dependency graph under an execution plan."""

    def __init__(self, graph, plan: dict, sources: dict[str, DataSource],
                 network: Network, mediator: Mediator | None = None,
                 query_overhead: float | None = None,
                 mediator_overhead: float = 0.01,
                 per_input_row_seconds: float | None = None,
                 per_output_row_seconds: float | None = None,
                 dynamic_scheduler=None,
                 violation_mode: str = "abort"):
        from repro.optimizer.cost import (PER_INPUT_ROW, PER_OUTPUT_ROW,
                                          QUERY_OVERHEAD)
        self.graph = graph
        self.plan = plan
        self.sources = dict(sources)
        self.mediator = mediator or Mediator()
        self.sources[MEDIATOR_NAME] = self.mediator
        self.network = network
        # The simulated clock combines the measured SQLite time with modeled
        # per-query costs of the paper's distributed deployment, computed
        # from *actual* row counts: dispatch overhead ("opening a connection,
        # parsing and preparing the statement"), input temp-table population
        # ("temporary tables may have to be created and populated with
        # inputs"), and result fetching.  Local SQLite has none of these, so
        # without them the 1 Mbps network would be the only cost and merging
        # could show no evaluation-side benefit.  Mediator-resident work
        # pays only a small statement overhead (no network dispatch).
        self.query_overhead = (QUERY_OVERHEAD if query_overhead is None
                               else query_overhead)
        self.mediator_overhead = mediator_overhead
        self.per_input_row = (PER_INPUT_ROW if per_input_row_seconds is None
                              else per_input_row_seconds)
        self.per_output_row = (PER_OUTPUT_ROW
                               if per_output_row_seconds is None
                               else per_output_row_seconds)
        #: When set (see repro.runtime.dynamic), the static per-source order
        #: of ``plan`` is ignored: after every completion the scheduler
        #: re-ranks the ready queries using actual output sizes.
        self.dynamic_scheduler = dynamic_scheduler
        if violation_mode not in ("abort", "report"):
            raise PlanError(f"violation_mode must be 'abort' or 'report', "
                            f"got {violation_mode!r}")
        self.violation_mode = violation_mode
        self._physical: dict[str, str] = {}
        self._physical_counter = 0
        self._last_rows_materialized = 0

    # ------------------------------------------------------------------
    def run(self, root_inh: dict) -> EngineResult:
        started = time.perf_counter()
        cache: dict[str, ResultSet] = {}
        timings: dict[str, NodeTiming] = {}
        completion: dict[str, float] = {}
        source_ready: dict[str, float] = {}
        bytes_shipped = 0
        queries = 0
        violations: list = []

        position: dict[str, tuple[str, int]] = {}
        if self.dynamic_scheduler is None:
            for source_name, sequence in self.plan.items():
                for index, node_name in enumerate(sequence):
                    position[node_name] = (source_name, index)
            for node_name in self.graph.nodes:
                if node_name not in position:
                    raise PlanError(
                        f"plan does not schedule node {node_name!r}")

        pending = dict(self.graph.nodes)
        while pending:
            progressed = False
            for name in self._execution_candidates(pending, position):
                node = pending[name]
                source_name = node.source
                if self.dynamic_scheduler is None:
                    source_name, index = position[name]
                    if index > 0 and \
                            self.plan[source_name][index - 1] in pending:
                        continue
                producers = self.graph.producer_names(node)
                if any(producer in pending for producer in producers):
                    continue
                # --- simulated start time -----------------------------
                start = source_ready.get(source_name, 0.0)
                for input_name in node.inputs:
                    producer_name = self.graph.resolve(input_name)
                    if producer_name == name:
                        continue
                    producer = self.graph.nodes[producer_name]
                    slice_bytes = cache[input_name].width_bytes() \
                        if input_name in cache else 0
                    transfer = self.network.trans_cost(
                        producer.source, node.source, slice_bytes)
                    if producer.source != node.source:
                        bytes_shipped += slice_bytes
                    start = max(start,
                                completion[producer_name] + transfer)
                # --- actual execution ---------------------------------
                self._last_rows_materialized = 0
                eval_seconds, outputs = self._execute(node, cache, root_inh)
                queries += 1
                for out_name, result in outputs.items():
                    cache[out_name] = result
                if node.source == MEDIATOR_NAME:
                    modeled = self.mediator_overhead
                else:
                    output_rows = sum(len(r) for r in outputs.values())
                    modeled = (self.query_overhead
                               + self.per_input_row
                               * self._last_rows_materialized
                               + self.per_output_row * output_rows)
                finish = start + eval_seconds + modeled
                completion[name] = finish
                source_ready[source_name] = finish
                primary = outputs.get(name)
                output_row_count = sum(len(r) for r in outputs.values())
                output_byte_count = sum(r.width_bytes()
                                        for r in outputs.values())
                timings[name] = NodeTiming(
                    name, node.source, eval_seconds, finish,
                    output_row_count, output_byte_count)
                if self.dynamic_scheduler is not None:
                    self.dynamic_scheduler.observe(
                        name, output_row_count, output_byte_count,
                        eval_seconds + modeled)
                if node.kind == "guard" and primary is not None \
                        and len(primary):
                    if self.violation_mode == "abort":
                        raise EvaluationAborted([node.guard.constraint])
                    violations.append(node.guard.constraint)
                del pending[name]
                progressed = True
                if self.dynamic_scheduler is not None:
                    break  # re-rank the ready set after every completion
            if not progressed:
                raise PlanError(
                    f"execution stuck; pending nodes {sorted(pending)}")

        # Final shipment of tagging-relevant outputs to the mediator.
        response = 0.0
        for name, node in self.graph.nodes.items():
            finish = completion[name]
            if node.ship_to_mediator and node.source != MEDIATOR_NAME:
                shipped = sum(
                    cache[member].width_bytes()
                    for member in self._member_names(node) if member in cache)
                finish += self.network.trans_cost(node.source, MEDIATOR_NAME,
                                                  shipped)
                bytes_shipped += shipped
            response = max(response, finish)

        return EngineResult(cache=cache, timings=timings,
                            response_time=response,
                            measured_seconds=time.perf_counter() - started,
                            queries_executed=queries,
                            bytes_shipped=bytes_shipped,
                            violations=violations)

    # ------------------------------------------------------------------
    def _execution_candidates(self, pending: dict,
                              position: dict) -> list[str]:
        """Node names to try this round, in selection order.

        Static mode preserves the plan's per-source sequences (iteration
        order is immaterial because the position check gates execution).
        Dynamic mode ranks the *ready* nodes by the scheduler's current
        priorities, falling back to the full pending set when nothing is
        ready yet (the caller detects deadlock).
        """
        if self.dynamic_scheduler is None:
            return list(pending)
        ready = [name for name, node in pending.items()
                 if not any(producer in pending
                            for producer in
                            self.graph.producer_names(node))]
        if not ready:
            return []
        ordered = sorted(
            ready, key=lambda name: (-self.dynamic_scheduler.priority(name),
                                     name))
        return ordered

    def _member_names(self, node) -> list[str]:
        members = getattr(node, "members", None)
        if members:
            return [member.name for member in members]
        return [node.name]

    def _execute(self, node, cache: dict[str, ResultSet],
                 root_inh: dict) -> tuple[float, dict[str, ResultSet]]:
        """Run one node; returns (measured seconds, outputs per name)."""
        source = self.sources.get(node.source)
        if source is None:
            raise EvaluationError(f"no data source named {node.source!r}")
        if getattr(node, "members", None):
            return self._execute_merged(node, source, cache, root_inh)
        if node.raw_sql is not None:
            return self._execute_raw(node, source, cache, root_inh)
        return self._execute_query(node, source, cache, root_inh)

    # -- plain AST queries ---------------------------------------------
    def _execute_query(self, node, source, cache, root_inh):
        materialize_started = time.perf_counter()
        bindings = self._materialize_inputs(node.inputs, source, cache)
        materialize_seconds = time.perf_counter() - materialize_started
        scalar_values = {param: root_inh[member]
                         for param, member in node.root_params.items()}
        sql, params = render_sqlite(node.query, scalar_values, bindings)
        result = source.execute(sql, tuple(params))
        if node.kind == "condition":
            result = _normalize_condition(result, node.name)
        output = _with_ids(result)
        elapsed = source.last_execution_seconds + materialize_seconds
        return elapsed, {node.name: output}

    # -- mediator raw SQL (collect / guard nodes) ------------------------
    def _execute_raw(self, node, source, cache, root_inh):
        sql = node.raw_sql
        for input_name in node.inputs:
            physical = self._cache_table(input_name, cache)
            sql = sql.replace(f"{{{input_name}}}", f'"{physical}"')
        for member, value in root_inh.items():
            sql = sql.replace(f"{{root:{member}}}", _sql_literal(value))
        result = self.mediator.execute(sql)
        output = _with_ids(result)
        return self.mediator.last_execution_seconds, {node.name: output}

    # -- merged nodes -----------------------------------------------------
    def _execute_merged(self, node, source, cache, root_inh):
        members = self._topo_members(node)
        external_inputs = [name for name in node.inputs]
        materialize_started = time.perf_counter()
        bindings = self._materialize_inputs(external_inputs, source, cache)
        materialize_seconds = time.perf_counter() - materialize_started
        member_names = {member.name for member in members}
        cte_names = {member.name: f"__m{index}"
                     for index, member in enumerate(members)}

        with_parts: list[str] = []
        all_params: list[object] = []
        widths = [len(member.output_columns) for member in members]
        total_width = max(widths)
        union_parts: list[str] = []
        for member in members:
            member_bindings = dict(bindings)
            for input_name in member.inputs:
                if input_name in member_names:
                    member_bindings[input_name] = cte_names[input_name]
            scalar_values = {param: root_inh[mem]
                             for param, mem in member.root_params.items()}
            sql, params = render_sqlite(member.query, scalar_values,
                                        member_bindings)
            # Members that other members inline need the __id path-encoding
            # column *inside* the statement; assigning it via ROW_NUMBER and
            # carrying it through the union keeps the cached slices and the
            # in-statement references consistent.
            with_parts.append(
                f"{cte_names[member.name]} AS "
                f"(SELECT *, ROW_NUMBER() OVER () AS {ID_COLUMN} "
                f"FROM ({sql}))")
            all_params.extend(params)
            columns = [f'"{c}"' for c in member.output_columns]
            padding = ["NULL"] * (total_width - len(columns))
            select_list = ", ".join(
                [f"'{member.name}' AS __tag"] + columns + padding
                + [f'"{ID_COLUMN}"'])
            union_parts.append(
                f"SELECT {select_list} FROM {cte_names[member.name]}")
        statement = ("WITH " + ", ".join(with_parts) + " "
                     + " UNION ALL ".join(union_parts))
        result = source.execute(statement, tuple(all_params))
        elapsed = source.last_execution_seconds + materialize_seconds

        outputs: dict[str, ResultSet] = {}
        for member in members:
            arity = len(member.output_columns)
            rows = [row[1:arity + 1] + (row[-1],) for row in result.rows
                    if row[0] == member.name]
            slice_result = ResultSet(
                list(member.output_columns) + [ID_COLUMN], rows)
            if member.kind == "condition":
                slice_result = _normalize_condition(slice_result,
                                                    member.name)
            outputs[member.name] = slice_result
        # The merged node itself needs a cache entry so bookkeeping works.
        outputs[node.name] = ResultSet(["__tag"],
                                       [(m.name,) for m in members])
        return elapsed, outputs

    def _topo_members(self, node):
        members = list(node.members)
        names = {member.name for member in members}
        ordered = []
        placed: set[str] = set()
        while members:
            for member in members:
                internal = [i for i in member.inputs if i in names]
                if all(i in placed for i in internal):
                    ordered.append(member)
                    placed.add(member.name)
                    members.remove(member)
                    break
            else:
                raise PlanError(f"merged node {node.name!r} has a cycle "
                                f"among members")
        return ordered

    # ------------------------------------------------------------------
    def _materialize_inputs(self, input_names, source, cache
                            ) -> dict[str, str]:
        """Create local temp tables for a node's inputs; returns bindings."""
        bindings: dict[str, str] = {}
        for input_name in input_names:
            if input_name not in cache:
                raise PlanError(f"input {input_name!r} not yet available")
            result = cache[input_name]
            if source.name == MEDIATOR_NAME:
                bindings[input_name] = self._cache_table(input_name, cache)
            else:
                bindings[input_name] = source.create_temp_table(
                    result.columns, result.rows)
                self._last_rows_materialized += len(result)
        return bindings

    def _cache_table(self, input_name: str, cache) -> str:
        """The mediator-resident physical table for a cached result."""
        if input_name not in self._physical:
            self._physical_counter += 1
            physical = f"cache_{self._physical_counter}"
            self.mediator.cache_result(physical, cache[input_name])
            self._physical[input_name] = physical
        return self._physical[input_name]


def _normalize_condition(result: ResultSet, node_name: str) -> ResultSet:
    """Coerce a condition node's selector column to int.

    The conceptual semantics reads the selector through ``int(...)``; the
    optimized pipeline's gating joins compare it to integer literals, so the
    cached table must hold real integers (SQLite does not coerce TEXT '2' to
    2 in equality).
    """
    if not result.rows:
        return result
    normalized = []
    for row in result.rows:
        selector = row[0]
        try:
            as_int = int(selector)
        except (TypeError, ValueError):
            raise EvaluationError(
                f"condition query {node_name!r} returned non-integer "
                f"{selector!r}") from None
        normalized.append((as_int,) + row[1:])
    return ResultSet(result.columns, normalized)


def _with_ids(result: ResultSet) -> ResultSet:
    """Append the ``__id`` path-encoding column (unique per table)."""
    if ID_COLUMN in result.columns:
        return result
    columns = result.columns + [ID_COLUMN]
    rows = [row + (index + 1,) for index, row in enumerate(result.rows)]
    return ResultSet(columns, rows)


def _sql_literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, (int, float)):
        return str(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
