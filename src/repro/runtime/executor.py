"""Event-driven plan execution: sequential and concurrent (one lane per
source).

The coordinator replaces the engine's former O(n²) retry loop with a
ready-queue over the :class:`~repro.optimizer.qdg.QueryDependencyGraph`:
producer→consumer edges are counted once up front, every completion event
decrements its consumers' in-degrees, and a node is dispatched the moment
its producers are done and its *lane* (the executing data source) is free.
Lanes are single-flight — at most one query runs against a source at a
time, matching both SQLite's comfort zone and the paper's model of one
query processor per site.

Two execution modes share the coordinator:

* ``workers=1`` — every task runs inline on the calling thread, using each
  source's main connection.  Static plans follow the per-source schedule
  order; dynamic plans re-rank the ready set after every completion and
  pick the single best node, which reproduces the sequential engine's
  behavior exactly.

* ``workers>1`` (or ``"auto"``, one per source) — a pool of worker threads
  drains a task queue; each busy lane holds a leased pooled connection
  (see :meth:`~repro.relational.source.DataSource.acquire_connection`), so
  independent sources genuinely overlap.  Completion events arrive on a
  FIFO queue; because a consumer is only dispatched after its producers'
  events were processed, the simulated-clock recurrence sees producers
  first and static-mode ``response_time`` is *identical* to sequential
  execution (the recurrence depends only on per-source order and producer
  completions, not on real interleaving).  Threaded dynamic scheduling
  observes completions in real arrival order, so its simulated clock can
  differ run to run — the produced document, violations, and bytes shipped
  remain deterministic.

``emulate_overheads=True`` makes workers *sleep* the modeled transfer and
per-query deployment costs instead of only adding them to the simulated
clock.  Sleeps release the GIL, so this mode demonstrates real wall-clock
overlap of the modeled distributed deployment on plans that have width —
useful for benchmarks on hardware where pure-SQLite work is GIL-bound.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from dataclasses import dataclass, field

from repro.errors import (
    EvaluationAborted,
    EvaluationError,
    PlanError,
    SourceUnavailableError,
)
from repro.obs.tracer import MAIN_TRACK
from repro.relational.source import MEDIATOR_NAME, ResultSet, intern_columns
from repro.resilience.report import DegradedSubtree, FailureReport
from repro.resilience.retry import QueryDeadlineExceeded, is_transient
from repro.runtime.engine import ID_COLUMN, EngineResult, NodeTiming
from repro.runtime.incremental import CachedNodeResult

logger = logging.getLogger("repro.executor")

#: Trace-span category per QDG node kind (see docs/OBSERVABILITY.md).
SPAN_CATEGORY = {"step": "query", "merged": "query", "collect": "collect",
                 "condition": "condition", "guard": "guard"}


def resolve_workers(workers, graph) -> int:
    """Resolve a ``workers`` setting (positive int or ``"auto"``) against a
    concrete graph; ``"auto"`` means one lane per participating source."""
    if workers == "auto":
        return max(1, len(graph.sources()))
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise PlanError(
            f"workers must be a positive integer or 'auto', got {workers!r}")
    if workers < 1:
        raise PlanError(f"workers must be >= 1, got {workers}")
    return workers


@dataclass
class _Task:
    """One dispatched node: executed by a worker (or inline)."""

    lane: str
    name: str
    node: object
    pre_sleep: float = 0.0       # emulated input-transfer wait


@dataclass
class _Completion:
    """A finished task, reported back to the coordinator."""

    lane: str
    name: str
    node: object
    eval_seconds: float = 0.0
    outputs: dict = field(default_factory=dict)
    rows_materialized: int = 0
    busy_seconds: float = 0.0    # wall time the lane was occupied
    error: BaseException | None = None
    from_cache: bool = False     # replayed from the incremental cache


class PlanExecutor:
    """Runs one engine invocation; holds no state across runs."""

    def __init__(self, engine):
        self.engine = engine
        self.graph = engine.graph
        self.workers = resolve_workers(engine.workers, engine.graph)

    # ------------------------------------------------------------------
    def run(self, root_inh: dict) -> EngineResult:
        engine = self.engine
        graph = self.graph
        tracer = engine.tracer
        run_span = tracer.span("execute", "execute", track=MAIN_TRACK,
                               workers=self.workers,
                               nodes=len(graph.nodes))
        with run_span:
            result = self._run(root_inh, run_span)
        return result

    def _run(self, root_inh: dict, run_span) -> EngineResult:
        engine = self.engine
        graph = self.graph
        tracer = engine.tracer
        metrics = tracer.metrics
        started = time.perf_counter()
        pool_baseline = _pool_stats(engine.sources)

        static = engine.dynamic_scheduler is None
        lane_sequences: dict[str, list[str]] = {}
        if static:
            scheduled: set[str] = set()
            for lane, sequence in engine.plan.items():
                members = [name for name in sequence if name in graph.nodes]
                lane_sequences[lane] = members
                scheduled.update(members)
            for node_name in graph.nodes:
                if node_name not in scheduled:
                    raise PlanError(
                        f"plan does not schedule node {node_name!r}")
            lane_of = {name: lane for lane, seq in lane_sequences.items()
                       for name in seq}
        else:
            lane_of = {name: node.source
                       for name, node in graph.nodes.items()}
        lane_order = list(lane_sequences) if static else sorted(
            {node.source for node in graph.nodes.values()})
        lane_pos = {lane: 0 for lane in lane_order}

        # --- ready-queue bookkeeping ----------------------------------
        indegree: dict[str, int] = {}
        consumers: dict[str, list[str]] = {name: [] for name in graph.nodes}
        for name, node in graph.nodes.items():
            producers = graph.producer_names(node)
            indegree[name] = len(producers)
            for producer in producers:
                consumers[producer].append(name)
        ready = {name for name, degree in indegree.items() if degree == 0}

        # --- run state -------------------------------------------------
        cache: dict[str, ResultSet] = {}
        timings: dict[str, NodeTiming] = {}
        completion_time: dict[str, float] = {}
        source_ready: dict[str, float] = {}
        shipped: dict[tuple[str, str], str] = {}
        in_flight: dict[str, str] = {}          # lane -> node name
        remaining = set(graph.nodes)
        bytes_shipped = 0
        queries = 0
        busy_total = 0.0
        violations: list = []

        threaded = (self.workers > 1 and len(lane_order) > 1
                    and len(graph.nodes) > 1)
        worker_count = min(self.workers, len(lane_order)) if threaded else 1
        task_queue: queue.SimpleQueue = queue.SimpleQueue()
        done_queue: queue.SimpleQueue = queue.SimpleQueue()
        stop = threading.Event()
        threads: list[threading.Thread] = []
        # Pre-leased connections (``Engine.preleased``) are used but never
        # acquired or released here — only ``owned`` leases are ours.
        connections: dict[str, object] = dict(engine.preleased)
        owned: list[str] = []
        skipped: set[str] = set()
        reused: set[str] = set()     # replayed from the incremental cache
        cache_entries: dict[str, CachedNodeResult] = {}
        failure_report: FailureReport | None = None
        retry_count = 0
        retry_count_lock = threading.Lock()  # incremented from worker threads

        def attempt_node(task: _Task, span):
            """``engine._execute`` under the retry policy and breaker.

            Transient failures (see :func:`repro.resilience.retry.
            is_transient`) are retried with deterministic backoff; every
            attempt's outcome feeds the source's circuit breaker, and an
            open breaker short-circuits remaining attempts.
            """
            nonlocal retry_count
            node = task.node
            policy = engine.retry_policy
            attempts = policy.attempts if policy is not None else 1
            breaker = engine.breaker_for(node.source)
            last_error: BaseException | None = None
            for attempt in range(1, attempts + 1):
                if breaker is not None and breaker.blocked():
                    raise SourceUnavailableError(
                        f"source {node.source!r}: circuit breaker is "
                        f"{breaker.state}; refusing {task.name!r}"
                    ) from last_error
                try:
                    result = engine._execute(
                        node, cache, root_inh,
                        connection=connections.get(node.source),
                        shipped=shipped)
                except Exception as error:
                    last_error = error
                    if breaker is not None:
                        breaker.record_failure()
                    if _caused_by(error, QueryDeadlineExceeded):
                        metrics.add("deadline_aborts", 1)
                    if attempt < attempts and is_transient(error):
                        delay = policy.delay(attempt, task.name)
                        with retry_count_lock:
                            retry_count += 1
                        metrics.add("retry_attempts", 1)
                        metrics.add(f"retry_attempts.{node.source}", 1)
                        span.set(retried=attempt)
                        logger.warning(
                            "node %s on %s failed (attempt %d/%d): %s; "
                            "retrying in %.3fs", task.name, node.source,
                            attempt, attempts, error, delay)
                        time.sleep(delay)
                        continue
                    if attempt > 1:
                        metrics.add("retries_exhausted", 1)
                    raise
                else:
                    if breaker is not None:
                        breaker.record_success()
                    if attempt > 1:
                        metrics.add("retry_recoveries", 1)
                        span.set(recovered_after_retries=attempt - 1)
                    return result
            raise AssertionError("unreachable")  # pragma: no cover

        def perform(task: _Task) -> _Completion:
            # The span *is* the lane-busy stopwatch (one timing source of
            # truth): ``busy_seconds`` below is its duration, and with a
            # recording tracer the same interval renders on the lane track.
            span = tracer.span(task.name, SPAN_CATEGORY.get(task.node.kind,
                                                            "query"),
                               track=task.lane, parent=run_span,
                               source=task.node.source, kind=task.node.kind)
            error: BaseException | None = None
            eval_seconds, outputs, rows = 0.0, {}, 0
            with span:
                try:
                    if task.pre_sleep > 0.0:
                        time.sleep(task.pre_sleep)
                    eval_seconds, outputs, rows = attempt_node(task, span)
                    if engine.emulate_overheads:
                        output_rows = sum(len(r) for r in outputs.values())
                        time.sleep(engine.modeled_overhead(
                            task.node, rows, output_rows))
                    span.set(eval_seconds=eval_seconds,
                             rows_materialized=rows,
                             output_rows=sum(len(r)
                                             for r in outputs.values()))
                except BaseException as exc:  # reported, re-raised centrally
                    error = exc
            if error is not None:
                return _Completion(task.lane, task.name, task.node,
                                   busy_seconds=span.duration, error=error)
            return _Completion(task.lane, task.name, task.node,
                               eval_seconds, outputs, rows, span.duration)

        def worker_loop():
            while True:
                task = task_queue.get()
                if task is None:
                    return
                if stop.is_set():
                    continue
                done_queue.put(perform(task))

        def select_dispatches() -> list[tuple[str, str]]:
            picks: list[tuple[str, str]] = []
            if static:
                for lane in lane_order:
                    if lane in in_flight:
                        continue
                    sequence = lane_sequences[lane]
                    pos = lane_pos[lane]
                    while pos < len(sequence) and (
                            sequence[pos] in skipped
                            or sequence[pos] in reused):
                        pos += 1   # degraded/cache-replayed nodes never dispatch
                    lane_pos[lane] = pos
                    if pos < len(sequence) and sequence[pos] in ready:
                        picks.append((lane, sequence[pos]))
            else:
                taken: set[str] = set()
                for name in engine.dynamic_scheduler.order(sorted(ready)):
                    lane = lane_of[name]
                    if lane in in_flight or lane in taken:
                        continue
                    picks.append((lane, name))
                    taken.add(lane)
                if not threaded:
                    # Sequential dynamic: one node at a time, re-ranking
                    # after every completion (the original behavior).
                    picks = picks[:1]
            return picks

        def emulated_pre_sleep(node) -> float:
            if not engine.emulate_overheads:
                return 0.0
            wait = 0.0
            for input_name in node.inputs:
                producer_name = graph.resolve(input_name)
                if producer_name == node.name:
                    continue
                producer = graph.nodes[producer_name]
                if producer.source == node.source:
                    continue
                nbytes = (cache[input_name].width_bytes()
                          if input_name in cache else 0)
                wait = max(wait, engine.network.trans_cost(
                    producer.source, node.source, nbytes))
            return wait

        def dispatch(lane: str, name: str) -> _Task:
            node = graph.nodes[name]
            ready.discard(name)
            if static:
                lane_pos[lane] += 1
            in_flight[lane] = name
            return _Task(lane, name, node, emulated_pre_sleep(node))

        def shut_down():
            if not threads:
                return
            stop.set()
            for _ in threads:
                task_queue.put(None)
            for thread in threads:
                thread.join()

        def consumer_closure(name: str) -> list[str]:
            """``name`` plus every transitive consumer (all not yet run)."""
            closure = [name]
            seen = {name}
            frontier = [name]
            while frontier:
                for consumer in consumers[frontier.pop()]:
                    if consumer not in seen:
                        seen.add(consumer)
                        closure.append(consumer)
                        frontier.append(consumer)
            return closure

        def try_degrade(done: _Completion) -> bool:
            """Skip the failed node's subtree if the DTD allows its absence.

            Degradation is legal only when every tagging table the closure
            would have produced belongs to a star iteration occurrence
            (``e*`` — zero instances conform) and no choice-condition node
            is lost (a missing selector cannot be tagged around).  Guards in
            the closure are skipped but reported as *unchecked*.
            """
            nonlocal failure_report
            error = done.error
            if engine.on_source_failure != "degrade":
                return False
            if isinstance(error, EvaluationAborted):
                return False         # a real constraint violation: surface it
            if not (isinstance(error, SourceUnavailableError)
                    or (isinstance(error, EvaluationError)
                        and is_transient(error))):
                return False         # logic/plan errors are never degradable
            plan_info = engine.tagging_plan
            if plan_info is None:
                logger.error("on_source_failure='degrade' needs the tagging "
                             "plan to prove subtree optionality; aborting")
                return False
            closure = consumer_closure(done.name)
            table_paths: dict[str, list[str]] = {}
            for path, producer in plan_info.table_of.items():
                table_paths.setdefault(graph.resolve(producer),
                                       []).append(path)
            condition_nodes = {graph.resolve(producer)
                               for producer in plan_info.condition_of.values()}
            subtrees: list[DegradedSubtree] = []
            unchecked: list[str] = []
            for name in closure:
                if name in condition_nodes:
                    logger.error("cannot degrade %s: choice condition %s "
                                 "would be lost", done.name, name)
                    return False
                node = graph.nodes[name]
                if node.kind == "guard":
                    unchecked.append(str(node.guard.constraint))
                    continue
                for path in table_paths.get(name, ()):
                    occurrence = plan_info.tree.by_path[path]
                    if occurrence.kind != "star":
                        logger.error(
                            "cannot degrade %s: subtree at %s is required "
                            "by the DTD (%s occurrence)", done.name, path,
                            occurrence.kind)
                        return False
                    subtrees.append(DegradedSubtree(
                        path, occurrence.element_type, name))
            if failure_report is None:
                failure_report = FailureReport()
            failure_report.failed_nodes[done.name] = (
                f"{type(error).__name__}: {error}")
            if (done.node.source != MEDIATOR_NAME and done.node.source
                    not in failure_report.sources_down):
                failure_report.sources_down.append(done.node.source)
            for name in closure:
                skipped.add(name)
                for out_name, result in _empty_outputs(
                        graph.nodes[name]).items():
                    cache[out_name] = result
                completion_time[name] = 0.0
                remaining.discard(name)
                ready.discard(name)
                for consumer in consumers[name]:
                    indegree[consumer] -= 1
            failure_report.skipped_nodes.extend(closure)
            failure_report.degraded_subtrees.extend(subtrees)
            for constraint in unchecked:
                if constraint not in failure_report.unchecked_guards:
                    failure_report.unchecked_guards.append(constraint)
            metrics.add("nodes_skipped", len(closure))
            metrics.add("subtrees_degraded", len(subtrees))
            metrics.add("guards_unchecked", len(unchecked))
            logger.warning(
                "degrading after failure of %s on %s: skipping %d node(s), "
                "%d subtree(s) emitted empty, %d guard(s) unchecked (%s)",
                done.name, done.node.source, len(closure), len(subtrees),
                len(unchecked), error)
            return True

        def process(done: _Completion):
            nonlocal bytes_shipped, queries, busy_total
            in_flight.pop(done.lane, None)
            if done.error is not None:
                if try_degrade(done):
                    return
                raise done.error
            node = done.node
            for out_name, result in done.outputs.items():
                cache[out_name] = result
            output_rows = sum(len(r) for r in done.outputs.values())
            output_bytes = sum(r.width_bytes()
                               for r in done.outputs.values())
            if done.from_cache:
                # A cache replay costs the clock nothing: the data is
                # already at the mediator, no query ran and no lane was
                # occupied.  Tainted consumers still pay the producer->
                # consumer transfer (the result is re-shipped to them).
                completion_time[done.name] = 0.0
                timings[done.name] = NodeTiming(
                    done.name, node.source, 0.0, 0.0,
                    output_rows, output_bytes)
                metrics.add("incremental_cache_hits", 1)
                logger.debug("replayed %s from the incremental cache "
                             "(%d row(s))", done.name, output_rows)
            else:
                queries += 1
                busy_total += done.busy_seconds
                # Simulated clock (Section 5.2): producers' completion
                # events were processed before this node was dispatched,
                # so their simulated times are known; per-lane order
                # equals dispatch order, so ``source_ready`` advances
                # like a serial per-site query processor.
                start = source_ready.get(done.lane, 0.0)
                for input_name in node.inputs:
                    producer_name = graph.resolve(input_name)
                    if producer_name == done.name:
                        continue
                    producer = graph.nodes[producer_name]
                    slice_bytes = (cache[input_name].width_bytes()
                                   if input_name in cache else 0)
                    transfer = engine.network.trans_cost(
                        producer.source, node.source, slice_bytes)
                    if producer.source != node.source:
                        bytes_shipped += slice_bytes
                    start = max(start,
                                completion_time[producer_name] + transfer)
                modeled = engine.modeled_overhead(
                    node, done.rows_materialized, output_rows)
                finish = start + done.eval_seconds + modeled
                completion_time[done.name] = finish
                source_ready[done.lane] = finish
                timings[done.name] = NodeTiming(
                    done.name, node.source, done.eval_seconds, finish,
                    output_rows, output_bytes, done.rows_materialized,
                    modeled)
                metrics.add(f"lane_busy_seconds.{done.lane}",
                            done.busy_seconds)
                metrics.observe("node_latency_seconds",
                                done.eval_seconds + modeled)
                metrics.observe(f"node_latency_seconds.{done.lane}",
                                done.eval_seconds + modeled)
                logger.debug("completed %s on %s: %d row(s), %.4fs eval, "
                             "simulated finish %.3fs", done.name, done.lane,
                             output_rows, done.eval_seconds, finish)
                if engine.dynamic_scheduler is not None:
                    engine.dynamic_scheduler.observe(
                        done.name, output_rows, output_bytes,
                        done.eval_seconds + modeled)
                if engine.fingerprints is not None:
                    fingerprint = engine.fingerprints.get(done.name)
                    if fingerprint is not None:
                        cache_entries[done.name] = CachedNodeResult(
                            fingerprint, dict(done.outputs))
                        metrics.add("incremental_cache_misses", 1)
            primary = done.outputs.get(done.name)
            if node.kind == "guard" and primary is not None and len(primary):
                logger.warning("constraint guard %s found a violation of %s",
                               node.name, node.guard.constraint)
                if engine.violation_mode == "abort":
                    raise EvaluationAborted([node.guard.constraint])
                violations.append(node.guard.constraint)
            remaining.discard(done.name)
            for consumer in consumers[done.name]:
                indegree[consumer] -= 1
                if indegree[consumer] == 0 and consumer not in skipped:
                    ready.add(consumer)

        # --- main loop -------------------------------------------------
        try:
            # Incremental replay (docs/INCREMENTAL.md): clean nodes form a
            # downward-closed cone of the DAG (a reused node's producers
            # are reused — fingerprints chain upstream), so all of them
            # can be processed up front in topological order.  The ready
            # queue below then only ever dispatches tainted nodes, under
            # static and dynamic scheduling alike.
            if engine.reuse:
                for node in graph.topological_order():
                    entry = engine.reuse.get(node.name)
                    if entry is None:
                        continue
                    ready.discard(node.name)
                    reused.add(node.name)
                    process(_Completion(
                        lane_of.get(node.name, node.source), node.name,
                        node, outputs=dict(entry.outputs), from_cache=True))
                logger.info("incremental replay: %d node(s) reused, "
                            "%d tainted", len(reused), len(remaining))
            if not remaining:
                threaded = False
            if threaded:
                for source_name in sorted(
                        {graph.nodes[name].source for name in remaining}):
                    if source_name in connections:
                        continue    # pre-leased by the caller
                    source = engine.sources.get(source_name)
                    if source is not None:
                        connections[source_name] = source.acquire_connection()
                        owned.append(source_name)
                threads = [threading.Thread(target=worker_loop,
                                            name=f"repro-exec-{index}",
                                            daemon=True)
                           for index in range(worker_count)]
                for thread in threads:
                    thread.start()
            while remaining:
                picks = select_dispatches()
                if not picks and not in_flight:
                    raise PlanError(
                        f"execution stuck; pending nodes {sorted(remaining)}")
                # The dispatcher peeks at each lane's circuit breaker first
                # (the non-leasing would_block — attempt_node's blocked()
                # call is the one that claims the half-open probe): nodes
                # bound for an open source fail immediately (and, in
                # degrade mode, skip their subtree) without occupying a
                # worker or waiting out retries.
                rejected: list[_Completion] = []
                accepted: list[_Task] = []
                for lane, name in (picks if threaded else picks[:1]):
                    node = graph.nodes[name]
                    breaker = engine.breaker_for(node.source)
                    task = dispatch(lane, name)
                    if breaker is not None and breaker.would_block():
                        rejected.append(_Completion(
                            lane, name, node,
                            error=SourceUnavailableError(
                                f"source {node.source!r}: circuit breaker "
                                f"is {breaker.state}; refusing {name!r}")))
                        continue
                    accepted.append(task)
                for completion in rejected:
                    process(completion)
                if threaded:
                    for task in accepted:
                        task_queue.put(task)
                    if not rejected and in_flight:
                        process(done_queue.get())
                elif accepted:
                    process(perform(accepted[0]))
        finally:
            shut_down()
            for source_name in owned:
                engine.sources[source_name].release_connection(
                    connections[source_name])
            # Failure-path hygiene: shipped temp tables from completed steps
            # must not outlive the run (a mid-plan abort used to strand
            # ``__ship_N`` tables on every target source).
            _drop_shipped_tables(engine.sources, shipped)

        # Final shipment of tagging-relevant outputs to the mediator.
        response = 0.0
        for name, node in graph.nodes.items():
            finish = completion_time[name]
            if (node.ship_to_mediator and node.source != MEDIATOR_NAME
                    and name not in reused):
                shipment = sum(
                    cache[member].width_bytes()
                    for member in engine._member_names(node)
                    if member in cache)
                finish += engine.network.trans_cost(
                    node.source, MEDIATOR_NAME, shipment)
                bytes_shipped += shipment
            response = max(response, finish)

        measured = time.perf_counter() - started
        speedup = busy_total / measured if measured > 0 else 1.0
        metrics.add("queries_executed", queries)
        metrics.add("bytes_shipped", bytes_shipped)
        metrics.add("rows_emitted",
                    sum(t.output_rows for t in timings.values()))
        metrics.add("rows_materialized",
                    sum(t.rows_materialized for t in timings.values()))
        metrics.add("violations_found", len(violations))
        pool_hits, pool_misses = _pool_stats(engine.sources)
        metrics.add("connection_pool_hits", pool_hits - pool_baseline[0])
        metrics.add("connection_pool_misses",
                    pool_misses - pool_baseline[1])
        metrics.set_gauge("workers", self.workers)
        metrics.set_gauge("response_time_seconds", response)
        if failure_report is not None:
            failure_report.retry_attempts = retry_count
            metrics.add("degraded_runs", 1)
            run_span.set(degraded=True,
                         skipped_nodes=len(failure_report.skipped_nodes))
            logger.warning("run degraded: %s", failure_report.summary())
        run_span.set(queries=queries, bytes_shipped=bytes_shipped,
                     response_time=response)
        if engine.fingerprints is not None:
            run_span.set(reused_nodes=len(reused))
        logger.info("executed %d node(s) on %d lane(s): %.3fs wall, "
                    "simulated response %.3fs, %d byte(s) shipped",
                    queries, len(lane_order), measured, response,
                    bytes_shipped)
        return EngineResult(cache=cache, timings=timings,
                            response_time=response,
                            measured_seconds=measured,
                            queries_executed=queries,
                            bytes_shipped=bytes_shipped,
                            violations=violations,
                            parallel_speedup=speedup,
                            workers=self.workers,
                            failure_report=failure_report,
                            reused_nodes=len(reused),
                            cache_entries=cache_entries)


def _empty_outputs(node) -> dict[str, ResultSet]:
    """Schema-correct empty results for a skipped node (degradation).

    Shapes match what :meth:`Engine._execute` would have produced — the
    ``__id`` path-encoding column appended, one slice per merged member —
    so tagging and downstream bookkeeping are oblivious to the skip.
    """
    members = getattr(node, "members", None)
    if members:
        outputs = {member.name: ResultSet(
            intern_columns(list(member.output_columns) + [ID_COLUMN]), [])
            for member in members}
        outputs[node.name] = ResultSet(["__tag"], [])
        return outputs
    return {node.name: ResultSet(
        intern_columns(list(node.output_columns) + [ID_COLUMN]), [])}


def _drop_shipped_tables(sources: dict, shipped: dict) -> None:
    """Best-effort drop of this run's shipped temp tables (ship-once
    registry), so sources end the run with the table set they started with
    even when the plan aborted mid-flight."""
    for (source_name, _), table in sorted(shipped.items()):
        source = sources.get(source_name)
        if source is None:
            continue
        try:
            source.drop_table(table)
        except Exception as error:  # noqa: BLE001 — cleanup must not mask
            logger.warning("cleanup of shipped table %r on %s failed: %s",
                           table, source_name, error)
    shipped.clear()


def _caused_by(error: BaseException, exc_type: type) -> bool:
    """Does ``error`` or its ``__cause__`` chain contain ``exc_type``?"""
    seen = set()
    current: BaseException | None = error
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        if isinstance(current, exc_type):
            return True
        current = current.__cause__
    return False


def _pool_stats(sources: dict) -> tuple[int, int]:
    """Summed (pool hits, pool misses) across a run's data sources."""
    hits = sum(getattr(source, "pool_hits", 0)
               for source in sources.values())
    misses = sum(getattr(source, "pool_misses", 0)
                 for source in sources.values())
    return hits, misses
