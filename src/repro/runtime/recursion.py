"""Recursion unfolding for AIGs (Section 5.5).

``unfold_aig(aig, depth)`` produces an equivalent non-recursive AIG over the
unfolded DTD of :func:`repro.dtd.analysis.unfold_dtd`: every per-budget copy
of an element type inherits the original's attribute schemas and semantic
rules, with child references renamed to the copy's children.  A star rule
whose production truncated to ``EMPTY`` becomes an empty rule whose
synthesized collections are empty — the paper's "assuming that the procedure
leaf has no children".

``strip_unfolding(tree)`` renames unfolded tags back to their base names, so
the final document conforms to the *original* recursive DTD (unfolding is an
evaluation device, not an interface change).

The middleware uses a user-supplied depth estimate ``d``; if at runtime the
deepest unfolded level still produces rows (the recursion was deeper than
estimated), evaluation is repeated with a larger ``d`` — the runtime loop of
Section 5.5.  ``deepest_level_types`` identifies the copies to watch.
"""

from __future__ import annotations

from repro.errors import CompilationError
from repro.dtd.analysis import base_name, recursive_types, unfold_dtd
from repro.dtd.model import Choice, Empty, PCDATA, Sequence, Star
from repro.xmlmodel.node import XMLElement
from repro.aig.functions import (
    Assign,
    AttrRef,
    CollectChildren,
    Const,
    EmptyCollection,
    QueryFunc,
    SingletonSet,
    UnionExpr,
)
from repro.aig.grammar import AIG
from repro.aig.rules import (
    ChoiceBranch,
    ChoiceRule,
    EmptyRule,
    PCDataRule,
    SequenceRule,
    StarRule,
)


def unfold_aig(aig: AIG, depth: int) -> AIG:
    """Unfold all recursion in ``aig`` to ``depth`` truncation levels.

    Must be applied to a *user* AIG (before specialization — guards and
    internal states are not remapped).  Non-recursive AIGs are returned
    unchanged.
    """
    if not recursive_types(aig.dtd):
        return aig
    if aig.guards or aig.internal_states:
        raise CompilationError(
            "unfold_aig must run before specialization (guards/states found)")
    new_dtd = unfold_dtd(aig.dtd, depth)
    root_schema = aig.inh_schema(aig.dtd.root)
    unfolded = AIG(new_dtd, aig.catalog, root_inh=root_schema.scalars)
    unfolded.constraints = list(aig.constraints)

    for new_type in new_dtd.productions:
        original = base_name(new_type)
        if original in aig.inh_schemas:
            unfolded.inh_schemas[new_type] = aig.inh_schemas[original]
        if original in aig.syn_schemas:
            unfolded.syn_schemas[new_type] = aig.syn_schemas[original]

    for new_type in new_dtd.productions:
        original = base_name(new_type)
        if original not in aig.rules:
            continue
        rule = aig.rules[original]
        new_model = new_dtd.production(new_type)
        old_model = aig.dtd.production(original)
        unfolded.rules[new_type] = _remap_rule(rule, old_model, new_model,
                                               new_type)
    return unfolded


def deepest_level_types(unfolded_dtd) -> set[str]:
    """Element types whose production was truncated (budget 0): the copies
    to watch for runtime re-unfolding.

    A truncated copy is one whose production differs in shape from deeper
    copies — concretely, a ``name#0`` copy of a star production that became
    ``EMPTY``, or a choice that lost alternatives.
    """
    watched: set[str] = set()
    for element_type, model in unfolded_dtd.productions.items():
        if base_name(element_type) == element_type:
            continue
        suffix = element_type.rsplit("#", 1)[1]
        if suffix == "0" and isinstance(model, (Empty, Choice)):
            watched.add(element_type)
    return watched


# ----------------------------------------------------------------------
# rule remapping
# ----------------------------------------------------------------------
def _child_mapping(old_model, new_model, owner: str) -> dict[str, str | None]:
    """original child name -> new child name (None if dropped)."""
    mapping: dict[str, str | None] = {}
    if isinstance(old_model, Sequence) and isinstance(new_model, Sequence):
        for old_item, new_item in zip(old_model.items, new_model.items):
            mapping[old_item.value] = new_item.value
    elif isinstance(old_model, Choice):
        new_names = (list(new_model.items)
                     if isinstance(new_model, (Choice, Sequence)) else [])
        available = {base_name(item.value): item.value for item in new_names}
        for old_item in old_model.items:
            mapping[old_item.value] = available.get(old_item.value)
    elif isinstance(old_model, Star):
        if isinstance(new_model, Star):
            mapping[old_model.item.value] = new_model.item.value
        else:
            mapping[old_model.item.value] = None
    return mapping


def _remap_rule(rule, old_model, new_model, owner: str):
    mapping = _child_mapping(old_model, new_model, owner)

    if isinstance(rule, (PCDataRule, EmptyRule)):
        return rule

    if isinstance(rule, SequenceRule):
        new_inh = tuple((mapping[child], _remap_func(function, mapping))
                        for child, function in rule.inh
                        if mapping.get(child) is not None)
        return SequenceRule(new_inh, _remap_assign(rule.syn, mapping))

    if isinstance(rule, StarRule):
        if isinstance(new_model, Empty):
            # Truncated: no children; collections become empty.
            return EmptyRule(_remap_assign(rule.syn, mapping))
        return StarRule(_remap_query(rule.child_query, mapping),
                        _remap_assign(rule.syn, mapping))

    assert isinstance(rule, ChoiceRule)
    branches = tuple(
        (mapping[name], ChoiceBranch(_remap_func(branch.inh, mapping),
                                     _remap_assign(branch.syn, mapping)))
        for name, branch in rule.branches
        if mapping.get(name) is not None)
    # Selector values keep the ORIGINAL production's positions: a dropped
    # (recursion-truncated) alternative maps to None, which the evaluators
    # turn into a depth-estimate error rather than a mis-selected branch.
    original = rule.selector_targets([item.value for item in old_model.items])
    selector_names = tuple(mapping.get(name) if name is not None else None
                           for name in original)
    return ChoiceRule(_remap_query(rule.condition, mapping), branches,
                      selector_names)


def _remap_func(function, mapping):
    if isinstance(function, Assign):
        return _remap_assign(function, mapping)
    assert isinstance(function, QueryFunc)
    return _remap_query(function, mapping)


def _remap_query(function: QueryFunc, mapping) -> QueryFunc:
    new_bindings = tuple((name, _remap_ref(ref, mapping) or ref)
                         for name, ref in function.bindings)
    return QueryFunc(function.query, new_bindings)


def _remap_ref(ref: AttrRef, mapping) -> AttrRef | None:
    if ref.kind == "inh":
        return ref
    new_element = mapping.get(ref.element, ref.element)
    if new_element is None:
        return None
    return AttrRef("syn", new_element, ref.member)


def _remap_assign(assignment: Assign, mapping) -> Assign:
    return Assign(tuple((member, _remap_expr(expression, mapping))
                        for member, expression in assignment.items))


def _remap_expr(expression, mapping):
    if isinstance(expression, Const):
        return expression
    if isinstance(expression, AttrRef):
        remapped = _remap_ref(expression, mapping)
        if remapped is None:
            return EmptyCollection()
        return remapped
    if isinstance(expression, SingletonSet):
        items = []
        for name, item in expression.items:
            remapped = _remap_expr(item, mapping)
            if isinstance(remapped, EmptyCollection):
                remapped = Const(None)  # scalar from a dropped alternative
            items.append((name, remapped))
        return SingletonSet(tuple(items))
    if isinstance(expression, CollectChildren):
        new_child = mapping.get(expression.child, expression.child)
        if new_child is None:
            return EmptyCollection()
        return CollectChildren(new_child, expression.member)
    if isinstance(expression, EmptyCollection):
        return expression
    assert isinstance(expression, UnionExpr)
    remapped_args = tuple(_remap_expr(argument, mapping)
                          for argument in expression.args)
    return UnionExpr(remapped_args)


# ----------------------------------------------------------------------
# output normalization
# ----------------------------------------------------------------------
def strip_unfolding(tree: XMLElement) -> XMLElement:
    """Rename ``name#k`` tags back to ``name`` in place; returns the tree."""
    for node in tree.iter():
        node.tag = base_name(node.tag)
    return tree


# ----------------------------------------------------------------------
# data-driven depth estimation (Section 7 future work)
# ----------------------------------------------------------------------
def estimate_recursion_depth(aig: AIG, sources, max_depth: int = 64,
                             margin: int = 1) -> int | None:
    """Estimate the unfolding depth from chain statistics in the sources.

    Section 7: "We are also investigating methods for statically generating
    query plans for AIGs based on recursive DTDs, utilizing statistics on
    the depth of chains within source relations."  For every recursive star
    rule whose iteration query has a recognizable *feedback* parameter —
    a scalar ``$p`` compared to a column, with an output column of the same
    name that will be fed back on the next level (σ0's Q3: ``p.trId1 = $p``
    feeding output ``trId``) — the chain relation (src, dst) is extracted
    from the sources and its longest path bounds the recursion depth.

    Returns the estimated depth (longest chain + ``margin``), ``max_depth``
    when a data cycle is detected, or ``None`` when no recursive query
    matches the feedback pattern (callers fall back to a default estimate
    plus runtime re-unrolling).
    """
    from repro.relational.source import Federation
    from repro.sqlq.analyze import scalar_params, set_params
    from repro.sqlq.ast import (ColumnRef, Comparison, Param, Query,
                                SelectItem)
    from repro.sqlq.render import render_sqlite

    recursive = recursive_types(aig.dtd)
    if not recursive:
        return 0
    source_list = (list(sources.values()) if isinstance(sources, dict)
                   else list(sources))
    federation = Federation(source_list)
    estimated = None
    for element_type in sorted(recursive):
        rule = aig.rules.get(element_type)
        if not isinstance(rule, StarRule):
            continue
        query = rule.child_query.query
        if set_params(query):
            continue
        feedback = _feedback_pattern(query)
        if feedback is None:
            continue
        param_name, src_col, dst_col, remaining = feedback
        if scalar_params(query) - {param_name}:
            continue  # other unbound parameters: cannot probe statically
        edge_query = Query(
            (SelectItem(src_col, "src"), SelectItem(dst_col, "dst")),
            query.from_items, remaining, distinct=True)
        sql, params = render_sqlite(edge_query, qualify_sources=True)
        rows = federation.execute(sql, tuple(params)).rows
        depth = _longest_chain(rows, max_depth)
        estimated = max(estimated or 0, depth)
    if estimated is None:
        return None
    return min(estimated + margin, max_depth)


def _feedback_pattern(query):
    """Detect ``(param, compared column, same-named output, other preds)``."""
    from repro.sqlq.analyze import scalar_params
    from repro.sqlq.ast import ColumnRef, Comparison, Param
    for param_name in sorted(scalar_params(query)):
        output = next((item for item in query.select
                       if item.alias == param_name
                       and isinstance(item.expr, ColumnRef)), None)
        if output is None:
            continue
        src_col = None
        remaining = []
        for predicate in query.where:
            matched = None
            if isinstance(predicate, Comparison) and predicate.op == "=":
                left, right = predicate.left, predicate.right
                if isinstance(left, Param) and left.name == param_name \
                        and isinstance(right, ColumnRef):
                    matched = right
                elif isinstance(right, Param) and right.name == param_name \
                        and isinstance(left, ColumnRef):
                    matched = left
            if matched is not None:
                src_col = matched
            else:
                remaining.append(predicate)
        if src_col is not None:
            return param_name, src_col, output.expr, tuple(remaining)
    return None


def _longest_chain(edges: list[tuple], max_depth: int) -> int:
    """Longest path (in nodes) of the (src, dst) edge set; ``max_depth`` on
    a cycle."""
    from collections import defaultdict
    successors: dict = defaultdict(list)
    for src, dst in edges:
        successors[src].append(dst)
    memo: dict = {}
    on_path: set = set()

    def depth_from(node) -> int:
        if node in memo:
            return memo[node]
        if node in on_path:
            return max_depth  # data cycle: unbounded recursion
        on_path.add(node)
        best = 1
        for successor in successors.get(node, ()):  # noqa: B007
            best = max(best, 1 + depth_from(successor))
            if best >= max_depth:
                break
        on_path.discard(node)
        memo[node] = min(best, max_depth)
        return memo[node]

    roots = {src for src, _ in edges} - {dst for _, dst in edges}
    candidates = roots or {src for src, _ in edges}
    longest = 0
    for node in candidates:
        longest = max(longest, depth_from(node))
        if longest >= max_depth:
            return max_depth
    return longest
