"""Dynamic scheduling (Section 5.5 / future work in Section 7).

"The algorithm described here made use of static query schedules for
simplicity — significant efficiency gains can accrue from using dynamic
scheduling, in which a runtime scheduler updates the query plans for each
site in parallel with evaluation."

:class:`DynamicScheduler` implements that extension: instead of fixing each
source's query order at compile time, it re-ranks the *ready* queries after
every completion, replacing the optimizer's estimates with the actual
cardinalities and byte sizes of already-produced tables.  ℓevel priorities
are recomputed on the updated estimates, so a query whose inputs turned out
larger than predicted is promoted (its critical path grew) and one whose
inputs collapsed is demoted.
"""

from __future__ import annotations

from repro.optimizer.cost import NodeEstimate
from repro.optimizer.schedule import levels
from repro.relational.network import Network


class DynamicScheduler:
    """Ranks ready nodes using estimates refreshed with actual outputs."""

    def __init__(self, graph, estimates: dict[str, NodeEstimate],
                 network: Network):
        self.graph = graph
        self.network = network
        self.estimates = dict(estimates)
        self._priority = levels(graph, self.estimates, network)

    def observe(self, node_name: str, actual_rows: int,
                actual_bytes: int, actual_eval_seconds: float) -> None:
        """Replace a completed node's estimate with its measured output and
        recompute priorities (the "runtime scheduler updates the plans")."""
        old = self.estimates.get(node_name)
        row_bytes = (actual_bytes / actual_rows) if actual_rows else (
            old.row_bytes if old else 8.0)
        self.estimates[node_name] = NodeEstimate(
            cardinality=float(actual_rows),
            row_bytes=row_bytes,
            eval_seconds=actual_eval_seconds,
            distinct=dict(old.distinct) if old else {})
        self._priority = levels(self.graph, self.estimates, self.network)

    def pick(self, ready_names: list[str]) -> str:
        """The ready node with the highest current ℓevel priority."""
        return max(ready_names,
                   key=lambda name: (self._priority.get(name, 0.0), name))

    def order(self, ready_names: list[str]) -> list[str]:
        """Ready nodes ranked by decreasing ℓevel priority (ties by name) —
        what the executor drains when filling idle source lanes."""
        return sorted(ready_names,
                      key=lambda name: (-self._priority.get(name, 0.0), name))

    def priority(self, name: str) -> float:
        return self._priority.get(name, 0.0)
