"""Optimized evaluation runtime: the middleware's execution and tagging
phases (Sections 5.1, 5.5).

* :mod:`repro.runtime.recursion` — unfold a recursive AIG to an estimated
  depth; detect at runtime whether the unfolding sufficed and extend it.
* :mod:`repro.runtime.engine` — execute an optimized plan: per-source query
  sequences, temp-table shipping through the mediator, and a simulated clock
  that prices communication with the :class:`~repro.relational.network.
  Network` model.
* :mod:`repro.runtime.tagging` — the tagging plan: sort-merge the cached
  output relations into the final XML tree, erase internal states and
  unfolding suffixes, check guards.
* :mod:`repro.runtime.middleware` — the facade: AIG in, document out.

Failure handling (retries, circuit breakers, degraded runs) lives in
:mod:`repro.resilience` and is wired through ``Middleware``'s
``retry_policy`` / ``deadline`` / ``breaker_policy`` /
``on_source_failure`` parameters — see docs/RESILIENCE.md.
"""

from repro.runtime.recursion import unfold_aig, strip_unfolding
from repro.runtime.middleware import Middleware, ExecutionReport

__all__ = [
    "unfold_aig",
    "strip_unfolding",
    "Middleware",
    "ExecutionReport",
]
