"""Sharded multi-process evaluation (docs/SHARDING.md).

The GIL caps CPU-bound tagging and constraint checking at one core no
matter how many worker *threads* the engine runs.  This module escapes
it by partitioning the document itself: a set-valued top-level
production (``A -> B*``) creates one independent subtree per row of its
driving query, so the row set can be split into key ranges and each
range evaluated by the existing single-process engine inside a separate
``multiprocessing`` worker — same plans, same optimizer, same tagging —
then spliced back together in driving-row order.

The pipeline:

1. :func:`find_partition` walks the DTD from the root through
   singly-referenced, non-recursive ``Sequence`` productions to the
   first eligible ``Star`` production (the *partition production*) and
   refuses anything whose data flow could leak partition content into
   the shared part of the document (syn consumers, guards, set-valued
   query parameters).  Ineligible AIGs fall back to the single-process
   path — sharding is an optimization, never a semantics change.
2. :func:`build_shard_tasks` runs the driving query once in the
   parent, sorts the rows by the tagging phase's canonical order, cuts
   them into ``shards`` contiguous key ranges, and packages one
   spawn-safe :class:`ShardTask` per range: a rewritten AIG whose star
   rule reads its range from a private ``BLOB``-typed shard relation
   (no affinity, so values round-trip exactly), full dumps of the base
   sources, the network model, and a whitelisted config.  Nothing in a
   task holds a sqlite3 connection, tracer, ledger, or feedback store.
3. :func:`_shard_worker` (in the worker process) rebuilds the sources,
   runs a fresh :class:`~repro.runtime.middleware.Middleware` in
   report mode, and returns its document plus per-context constraint
   *evidence* (:func:`repro.constraints.reconcile.collect_evidence`).
4. :func:`evaluate_sharded` (back in the parent) splices the shard
   documents at the partition production — order-preserving, so the
   result is byte-identical to the single-process document — and
   reconciles the constraint evidence across shards
   (:func:`repro.constraints.reconcile.reconcile`): keys need global
   duplicate detection, inclusions a global containment pass.

Workers always run in report mode: a guard aborting inside one shard
could fire on a constraint that another shard's rows satisfy (or miss
one only the union violates).  The *reconciled* verdict is the sharded
run's verdict; in abort mode the parent raises
:class:`~repro.errors.EvaluationAborted` exactly when it is non-empty.

Worker processes are spawned (never forked: the parent holds sqlite
connections and locks) and kept in a module-level pool so repeated
evaluations amortize interpreter start-up.
"""

from __future__ import annotations

import atexit
import gc
import multiprocessing
import pickle
import threading
import time
from dataclasses import dataclass

from repro.aig.functions import (
    Assign,
    AttrRef,
    CollectChildren,
    Const,
    QueryFunc,
    UnionExpr,
    scalar_refs,
)
from repro.aig.grammar import AIG
from repro.aig.rules import (
    ChoiceRule,
    EmptyRule,
    PCDataRule,
    SequenceRule,
    StarRule,
)
from repro.constraints.reconcile import collect_evidence, reconcile
from repro.dtd.analysis import recursive_types
from repro.dtd.model import Sequence, Star
from repro.errors import EvaluationAborted, EvaluationError
from repro.relational.schema import (
    Catalog,
    Column,
    RelationSchema,
    SourceSchema,
)
from repro.relational.source import (DataSource, Federation,
                                     iter_result_rows)
from repro.sqlq.analyze import scalar_params, set_params
from repro.sqlq.ast import BaseTable, ColumnRef, Query, SelectItem
from repro.sqlq.render import render_sqlite
from repro.xmlmodel.node import XMLElement

#: Relation name of the per-shard key-range table.
SHARD_RELATION = "rows"


@dataclass(frozen=True)
class PartitionSpec:
    """Where and how a document can be partitioned.

    ``chain`` is the element-type path from the DTD root to the
    partition production (inclusive); ``splice_depth`` is the child
    index position at which shard-local order paths differ, i.e.
    ``len(chain) - 1``.
    """

    chain: tuple[str, ...]
    star_type: str
    query: Query
    bindings: QueryFunc
    splice_depth: int


@dataclass
class ShardTask:
    """Everything one worker needs, spawn-safe and picklable.

    ``source_dump`` is the pickled ``{name: (schema, {relation: rows})}``
    dump of every base source.  It is pickled *once* in the parent and
    the same bytes object is shared by every task, so serializing N
    payloads costs one pickle pass plus N C-speed copies instead of N
    object-graph pickles.
    """

    aig: AIG
    source_dump: bytes
    shard_schema: SourceSchema
    chunk: list
    network: object
    root_inh: dict
    config: dict
    chain: tuple


@dataclass
class ShardResult:
    """One worker's document, evidence, and run statistics.

    ``document`` is the :func:`encode_document` form of the shard's
    tree, not an :class:`XMLElement`: flat label/shape lists pickle at
    C speed, where pickling the linked node graph costs several
    microseconds per node — on big documents the parent's deserialize
    is the serial bottleneck sharding must not widen.
    """

    document: tuple
    evidence: object
    response_time: float
    estimated_cost: float
    measured_seconds: float
    cpu_seconds: float
    queries_executed: int
    bytes_shipped: int
    node_count: int
    unfold_depth: int | None
    workers: int
    peak_rss_kb: int
    rows: int


# ----------------------------------------------------------------------
# eligibility
# ----------------------------------------------------------------------
def _syn_consumers(aig: AIG) -> set[str]:
    """Element types whose synthesized attributes any rule consumes.

    A chain member with a consumed syn could leak partition-dependent
    data into the shared part of the document, so it disqualifies the
    chain.
    """
    consumed: set[str] = set()

    def scan_expr(expression) -> None:
        if isinstance(expression, CollectChildren):
            consumed.add(expression.child)
            return
        if isinstance(expression, UnionExpr):
            for arg in expression.args:
                scan_expr(arg)
            return
        for ref in scalar_refs(expression):
            if ref.kind == "syn" and ref.element:
                consumed.add(ref.element)

    def scan_func(function) -> None:
        if isinstance(function, Assign):
            for _, expression in function.items:
                scan_expr(expression)
        elif isinstance(function, QueryFunc):
            for name in (scalar_params(function.query)
                         | set_params(function.query)):
                ref = function.binding_for(name)
                if ref.kind == "syn" and ref.element:
                    consumed.add(ref.element)

    for rule in aig.rules.values():
        if isinstance(rule, PCDataRule):
            scan_func(rule.text)
            scan_func(rule.syn)
        elif isinstance(rule, EmptyRule):
            scan_func(rule.syn)
        elif isinstance(rule, SequenceRule):
            for _, function in rule.inh:
                scan_func(function)
            scan_func(rule.syn)
        elif isinstance(rule, ChoiceRule):
            scan_func(rule.condition)
            for _, branch in rule.branches:
                scan_func(branch.inh)
                scan_func(branch.syn)
        elif isinstance(rule, StarRule):
            scan_func(rule.child_query)
            scan_func(rule.syn)
    return consumed


def _assign_inh_only(function) -> bool:
    """Is a chain inh function computable from the parent env alone?"""
    if not isinstance(function, Assign):
        return False
    return all(isinstance(expression, Const)
               or (isinstance(expression, AttrRef)
                   and expression.kind == "inh")
               for _, expression in function.items)


def _query_eligible(child_query: QueryFunc) -> bool:
    """Can the driving query run once in the parent, parameter-free of
    sibling state?  Base tables only, scalar parameters only, every
    parameter bound to an inherited attribute."""
    query = child_query.query
    if any(not isinstance(item, BaseTable) for item in query.from_items):
        return False
    if set_params(query):
        return False
    return all(child_query.binding_for(name).kind == "inh"
               for name in scalar_params(query))


def find_partition(aig: AIG) -> PartitionSpec | None:
    """The shallowest partitionable star production, or ``None``.

    Walks breadth-first from the DTD root through ``Sequence``
    productions.  Every chain member must be referenced exactly once in
    the whole DTD (so the splice point is unique), non-recursive, not an
    internal state, have no consumed synthesized attributes, and be
    reached through ``Assign``-only inherited functions (so the parent
    can compute the driving query's bindings without evaluating
    anything).  Custom guards disqualify the AIG entirely: a guard may
    encode a global condition the per-shard runs cannot see.
    """
    if aig.guards:
        return None
    dtd = aig.dtd
    recursive = recursive_types(dtd)
    consumed = _syn_consumers(aig)
    reference_counts: dict[str, int] = {}
    for model in dtd.productions.values():
        for name in model.names():
            reference_counts[name] = reference_counts.get(name, 0) + 1

    from collections import deque
    queue = deque([(dtd.root, (dtd.root,))])
    visited: set[str] = set()
    while queue:
        element, chain = queue.popleft()
        if element in visited:
            continue
        visited.add(element)
        if element in recursive or element in aig.internal_states \
                or element in consumed:
            continue
        if element != dtd.root and reference_counts.get(element, 0) != 1:
            continue
        model = dtd.production(element)
        rule = aig.rules.get(element)
        if isinstance(model, Star):
            if not isinstance(rule, StarRule):
                continue
            if rule.syn.items != ():
                continue
            if not _query_eligible(rule.child_query):
                continue
            return PartitionSpec(chain, element, rule.child_query.query,
                                 rule.child_query, len(chain) - 1)
        if isinstance(model, Sequence):
            if rule is not None and not isinstance(rule, SequenceRule):
                continue
            for child in model.names():
                function = (rule.inh_for(child) if rule is not None
                            else Assign(()))
                if _assign_inh_only(function):
                    queue.append((child, chain + (child,)))
    return None


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------
def _chain_environment(aig: AIG, spec: PartitionSpec,
                       root_inh: dict) -> dict:
    """The partition production's inherited env, folded down the chain."""
    env = dict(root_inh)
    for parent, child in zip(spec.chain, spec.chain[1:]):
        rule = aig.rules.get(parent)
        function = (rule.inh_for(child) if isinstance(rule, SequenceRule)
                    else Assign(()))
        env = {member: (expression.value
                        if isinstance(expression, Const)
                        else env.get(expression.member))
               for member, expression in function.items}
    return env


def _canonical_key(row: tuple) -> tuple:
    """The tagging phase's child sort key (``_Table`` in tagging.py):
    None-safe string order over all driving columns."""
    return tuple((value is not None, str(value)) for value in row)


def partition_rows(middleware, spec: PartitionSpec,
                   root_inh: dict) -> list[tuple]:
    """Run the driving query once and return its rows in canonical
    (tagging) order, ready for contiguous key-range slicing."""
    env = _chain_environment(middleware.aig, spec, root_inh)
    values = {name: env.get(spec.bindings.binding_for(name).member)
              for name in scalar_params(spec.query)}
    sql, params = render_sqlite(spec.query, scalar_values=values,
                                qualify_sources=True)
    federation = Federation(list(middleware.sources.values()))
    try:
        result = federation.execute(sql, tuple(params))
    finally:
        federation.connection.close()
    return sorted(result.rows, key=_canonical_key)


def _fresh_source_name(aig: AIG, sources: dict) -> str:
    name = "__shard"
    taken = set(aig.catalog.source_names) | set(sources)
    while name in taken:
        name += "_x"
    return name


def _shard_aig(aig: AIG, spec: PartitionSpec, shard_source: str):
    """The worker-side AIG: same grammar, but the partition production's
    driving query reads its key range from the private shard relation."""
    columns = spec.query.output_names
    schema = SourceSchema(shard_source, (RelationSchema(
        SHARD_RELATION, tuple(Column(c, "BLOB") for c in columns)),))
    replacement = Query(
        select=tuple(SelectItem(ColumnRef("s", column), column)
                     for column in columns),
        from_items=(BaseTable(shard_source, SHARD_RELATION, "s"),))
    clone = aig.clone()
    clone.rules[spec.star_type] = StarRule(
        QueryFunc(replacement), aig.rules[spec.star_type].syn)
    clone.catalog = Catalog([aig.catalog.source(name)
                             for name in aig.catalog.source_names]
                            + [schema])
    return clone, schema


#: Middleware knobs a worker inherits.  Deliberately excluded: tracer,
#: ledger, cost_feedback, incremental, retry/breaker/deadline state —
#: they hold process-local handles (files, sqlite, locks) or cross-run
#: caches that must not ride a pickle into another process.
_WORKER_CONFIG_KEYS = (
    "merging", "scheduling", "workers", "unfold_depth",
    "max_unfold_depth", "pushdown", "query_overhead", "emulate_overheads",
)


def _worker_config(middleware) -> dict:
    config = {key: getattr(middleware, key) for key in _WORKER_CONFIG_KEYS}
    config["columnar"] = (middleware.batch_rows
                         if middleware.batch_rows else False)
    return config


def build_shard_tasks(middleware, root_inh: dict,
                      shards: int | None = None):
    """Partition one evaluation into spawn-safe worker tasks.

    Returns ``(spec, tasks, total_rows)`` or ``None`` when the AIG has
    no eligible partition production.  Exposed separately from
    :func:`evaluate_sharded` so tests can assert payload spawn-safety
    (``pickle.dumps`` of every task) without paying for worker
    processes.
    """
    shards = middleware.shards if shards is None else shards
    for source in middleware.sources.values():
        capabilities = getattr(source, "capabilities", None)
        if capabilities is not None and not capabilities.blob_affinity:
            # The shard-chunk relation stores pickled driving rows in
            # BLOB columns and relies on affinity-free round-tripping;
            # strictly typed backends cannot host it.
            return None
    spec = find_partition(middleware.aig)
    if spec is None:
        return None
    rows = partition_rows(middleware, spec, root_inh)
    count = len(rows)
    chunks = [rows[index * count // shards:(index + 1) * count // shards]
              for index in range(shards)]
    shard_source = _fresh_source_name(middleware.aig, middleware.sources)
    shard_aig, shard_schema = _shard_aig(middleware.aig, spec,
                                         shard_source)
    dumps = {}
    for name, source in middleware.sources.items():
        relations = {}
        for relation_schema in source.schema.relations:
            result = source.execute(
                f'SELECT * FROM "{relation_schema.name}"')
            relations[relation_schema.name] = list(iter_result_rows(result))
        dumps[name] = (source.schema, relations)
    # One pickle pass; every task shares the same bytes object.
    source_dump = pickle.dumps(dumps, protocol=pickle.HIGHEST_PROTOCOL)
    config = _worker_config(middleware)
    tasks = [ShardTask(aig=shard_aig, source_dump=source_dump,
                       shard_schema=shard_schema, chunk=chunk,
                       network=middleware.network,
                       root_inh=dict(root_inh), config=config,
                       chain=spec.chain)
             for chunk in chunks]
    return spec, tasks, count


# ----------------------------------------------------------------------
# compact tree codec (worker -> parent IPC)
# ----------------------------------------------------------------------
def encode_document(root: XMLElement) -> tuple[list, list]:
    """Flatten a tree into pre-order ``(labels, shape)`` lists.

    ``labels[i]`` is the i-th node's tag (elements) or value (text);
    ``shape[i]`` is its child count, with ``-1`` marking a text node.
    Two flat lists of strings and small ints pickle at C speed and
    round-trip byte-identically through :func:`decode_document`.
    """
    from repro.xmlmodel.node import XMLText

    labels: list[str] = []
    shape: list[int] = []
    stack: list = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, XMLText):
            labels.append(node.value)
            shape.append(-1)
        else:
            labels.append(node.tag)
            shape.append(len(node.children))
            stack.extend(reversed(node.children))
    return labels, shape


def decode_document(labels: list, shape: list) -> XMLElement:
    """Rebuild the tree from :func:`encode_document` output.

    Constructs nodes via ``__new__`` and wires parent/child links
    directly — the validation and re-parenting logic in
    ``XMLElement.append`` is redundant here and would dominate the
    parent's serial merge cost on large documents.
    """
    from repro.xmlmodel.node import XMLText

    root: XMLElement | None = None
    #: (element, children still to attach) — pre-order frontier.
    stack: list[list] = []
    for label, count in zip(labels, shape):
        if count == -1:
            node = XMLText.__new__(XMLText)
            node.value = label
        else:
            node = XMLElement.__new__(XMLElement)
            node.tag = label
            node.children = []
        if stack:
            top = stack[-1]
            node.parent = top[0]
            top[0].children.append(node)
            top[1] -= 1
            if top[1] == 0:
                stack.pop()
        else:
            node.parent = None
            root = node
        if count > 0:
            stack.append([node, count])
    if root is None or stack:
        raise EvaluationError("sharded merge: malformed encoded document")
    return root


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _locate_splice(document: XMLElement, chain: tuple) -> XMLElement:
    """The partition production's element, by walking the chain tags.

    Every chain member is singly-referenced, so following the *first*
    child with each tag is unambiguous.
    """
    node = document
    for tag in chain[1:]:
        child = node.find(tag)
        if child is None:
            raise EvaluationError(
                f"sharded merge: chain element {tag!r} missing from the "
                f"shard document (path {'/'.join(chain)})")
        node = child
    return node


def _shard_worker(payload: bytes) -> bytes:
    """Evaluate one shard task end to end; runs in a worker process.

    Takes and returns pickled bytes so the parent can meter IPC volume
    exactly.  Always evaluates in report mode — a shard-local guard
    verdict is meaningless before reconciliation — and returns the
    evidence the parent needs for the global constraint pass.
    """
    import gc

    # The CPU window spans the whole worker body: unpickling, source
    # rebuild, plan compilation, evaluation, evidence collection, and
    # result pickling are all per-worker work that overlaps across
    # processes on a multi-core host.
    cpu_started = time.process_time()
    # Pause the cyclic collector for the task body: evaluation garbage
    # is acyclic (freed by refcount) while the document tree is cyclic
    # (parent <-> children) but alive until the result ships, so every
    # generational pass would only rescan a growing live graph (~20% of
    # worker CPU measured).  The task is bounded; one collect at the
    # end returns the pooled worker to a clean state.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return _shard_worker_body(payload, cpu_started)
    finally:
        if gc_was_enabled:
            gc.enable()
        gc.collect()


def _shard_worker_body(payload: bytes, cpu_started: float) -> bytes:
    """The metered body of :func:`_shard_worker` (GC paused around it)."""
    import resource

    from repro.runtime.middleware import Middleware

    task: ShardTask = pickle.loads(payload)
    sources = {}
    for name, (schema, relations) in pickle.loads(task.source_dump).items():
        source = DataSource(schema)
        for relation_name, rows in relations.items():
            if rows:
                source.load_rows(relation_name,
                                 [tuple(row) for row in rows])
        sources[name] = source
    shard_store = DataSource(task.shard_schema)
    if task.chunk:
        shard_store.load_rows(SHARD_RELATION,
                              [tuple(row) for row in task.chunk])
    sources[task.shard_schema.source] = shard_store
    middleware = Middleware(task.aig, sources, task.network,
                            violation_mode="report", **task.config)
    report = middleware.evaluate(dict(task.root_inh))
    splice = _locate_splice(report.document, task.chain)
    # The engine's guard queries already scanned this shard's whole
    # document: constraints whose guard stayed clean cannot have a
    # local violation, so the evidence pass skips their local contexts.
    # A degraded run may have skipped guard nodes — fall back to the
    # full scan rather than trust an unchecked guard.
    suspects = (None if report.failure_report is not None
                else set(report.violations))
    evidence = collect_evidence(report.document, task.aig.constraints,
                                splice, suspects)
    encoded = encode_document(report.document)
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    for source in sources.values():
        source.close()
    # Result pickling cannot meter itself, so the window closes here;
    # the cost of the final dumps (single-digit milliseconds) is the
    # only worker CPU left uncounted.
    cpu_seconds = time.process_time() - cpu_started
    return pickle.dumps(ShardResult(
        document=encoded,
        evidence=evidence,
        response_time=report.response_time,
        estimated_cost=report.estimated_cost,
        measured_seconds=report.measured_seconds,
        cpu_seconds=cpu_seconds,
        queries_executed=report.queries_executed,
        bytes_shipped=report.bytes_shipped,
        node_count=report.node_count,
        unfold_depth=report.unfold_depth,
        workers=report.workers,
        peak_rss_kb=peak_rss_kb,
        rows=len(task.chunk)))


# ----------------------------------------------------------------------
# worker pool (persistent, spawn-based)
# ----------------------------------------------------------------------
_pool = None
_pool_size = 0
_pool_lock = threading.Lock()


def _get_pool(size: int):
    """The shared spawn pool, grown (never shrunk) to ``size``."""
    global _pool, _pool_size
    with _pool_lock:
        if _pool is None or _pool_size < size:
            if _pool is not None:
                _pool.terminate()
                _pool.join()
            context = multiprocessing.get_context("spawn")
            _pool = context.Pool(size)
            _pool_size = size
        return _pool


def shutdown_shard_pool() -> None:
    """Tear down the worker pool (idempotent; registered atexit)."""
    global _pool, _pool_size
    with _pool_lock:
        if _pool is not None:
            _pool.terminate()
            _pool.join()
            _pool = None
            _pool_size = 0


atexit.register(shutdown_shard_pool)


# ----------------------------------------------------------------------
# parent-side coordinator
# ----------------------------------------------------------------------
def merge_documents(documents: list[XMLElement],
                    chain: tuple) -> XMLElement:
    """Splice shard documents into one, in shard (= key-range) order.

    Shard 0's document is the base — its shared part is identical to
    every other shard's by construction — and the other shards'
    partition children are appended at the splice element in order,
    which is exactly the driving-row order the single-process tagging
    phase would have produced.
    """
    base = documents[0]
    splice = _locate_splice(base, chain)
    for other in documents[1:]:
        other_splice = _locate_splice(other, chain)
        # Bulk transfer instead of per-child ``append``: append would
        # remove each child from the donor list (a linear scan), turning
        # the splice quadratic in shard size.
        for child in other_splice.children:
            child.parent = splice
        splice.children.extend(other_splice.children)
        other_splice.children = []
    return base


def evaluate_sharded(middleware, root_inh: dict, tracer):
    """One sharded evaluation; ``None`` when the AIG is not partitionable.

    Called by :meth:`Middleware.evaluate` under the run lock when
    ``shards > 1``.  Returns a regular
    :class:`~repro.runtime.middleware.ExecutionReport` whose document is
    byte-identical to the single-process engine's and whose
    ``violations`` carry the *reconciled* cross-shard verdict; raises
    :class:`~repro.errors.EvaluationAborted` in abort mode exactly when
    that verdict is non-empty.
    """
    from repro.runtime.middleware import ExecutionReport

    shards = middleware.shards
    started = time.perf_counter()
    with tracer.span("shard-partition", "shard", shards=shards):
        built = build_shard_tasks(middleware, root_inh)
        if built is None:
            tracer.metrics.add("shard_fallbacks", 1)
            return None
        spec, tasks, total_rows = built
    driving_seconds = time.perf_counter() - started
    payloads = [pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)
                for task in tasks]
    ipc_bytes = sum(len(payload) for payload in payloads)
    results, documents = [], []
    # Pause the cyclic collector while rebuilding the shard trees: the
    # decode loop allocates hundreds of thousands of live, cyclic
    # (parent <-> children) nodes and almost no cyclic garbage, so each
    # generational pass would only rescan the growing result document
    # (over half of the decode cost measured).
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        with tracer.span("shard-dispatch", "shard", shards=shards,
                         rows=total_rows):
            pool = _get_pool(shards)
            # imap pipelines the parent's deserialize/decode with the
            # still-running workers: shard 0's tree is rebuilt while
            # shards 1..N-1 are still evaluating, so on a multi-core
            # host only the last shard's decode sits on the critical
            # path.
            for blob in pool.imap(_shard_worker, payloads):
                ipc_bytes += len(blob)
                result = pickle.loads(blob)
                results.append(result)
                documents.append(decode_document(*result.document))
        with tracer.span("shard-merge", "shard"):
            document = merge_documents(documents, spec.chain)
    finally:
        if gc_was_enabled:
            gc.enable()
    reconcile_started = time.perf_counter()
    with tracer.span("shard-reconcile", "shard"):
        violations = reconcile(middleware.aig.constraints,
                               [result.evidence for result in results],
                               spec.splice_depth)
    reconcile_seconds = time.perf_counter() - reconcile_started

    tracer.metrics.add("sharded_evaluations", 1)
    tracer.metrics.add("evaluations", 1)
    tracer.metrics.set_gauge("shard_count", shards)
    tracer.metrics.set_gauge("shard_reconcile_seconds", reconcile_seconds)
    tracer.metrics.set_gauge("shard_ipc_bytes", ipc_bytes)
    for index, result in enumerate(results):
        tracer.metrics.set_gauge(f"shard_rows.{index}", result.rows)
        tracer.metrics.set_gauge(f"shard_peak_rss.{index}",
                                 result.peak_rss_kb)
    if middleware.violation_mode == "abort" and violations:
        raise EvaluationAborted(violations)
    measured_seconds = time.perf_counter() - started
    return ExecutionReport(
        document=document,
        response_time=(driving_seconds
                       + max(result.response_time for result in results)
                       + reconcile_seconds),
        estimated_cost=max(result.estimated_cost for result in results),
        measured_seconds=measured_seconds,
        queries_executed=1 + sum(result.queries_executed
                                 for result in results),
        bytes_shipped=sum(result.bytes_shipped for result in results),
        node_count=results[0].node_count,
        merged=middleware.merging,
        unfold_depth=results[0].unfold_depth,
        violations=violations,
        workers=results[0].workers,
        shards=shards,
        shard_rows=[result.rows for result in results],
        reconcile_seconds=reconcile_seconds,
        ipc_bytes=ipc_bytes,
        shard_peak_rss=[result.peak_rss_kb for result in results],
        shard_cpu_seconds=[result.cpu_seconds for result in results])
