"""The tagging phase (Section 5.1): relations -> XML tree.

Tagging runs entirely at the mediator, over the cached output relations.
The occurrence tree drives a single top-down construction pass:

* star children materialize one element per table row whose ``__parent``
  matches the current anchor row (rows sorted canonically, so both
  evaluation paths produce identical sibling orders);
* sequence children recurse in production order;
* choice occurrences consult the condition table for the current anchor row
  and emit only the selected alternative;
* text nodes read their PCDATA through the copy-chain provenance computed at
  compile time (a column of an enclosing anchor row, a root attribute
  member, or a constant).

Internal-state nodes never enter the tree (decomposition steps are not
element occurrences), and unfolding suffixes are stripped afterwards by
:func:`repro.runtime.recursion.strip_unfolding`.
"""

from __future__ import annotations

from repro.errors import EvaluationError
from repro.dtd.model import Choice, Empty, PCDATA, Sequence, Star
from repro.relational.source import ResultSet
from repro.xmlmodel.node import XMLElement, XMLText
from repro.compilation.occurrences import (
    ConstValue,
    Occurrence,
    RootValue,
    TableColumn,
)
from repro.optimizer.qdg import TaggingPlan
from repro.runtime.engine import ID_COLUMN

PARENT_COLUMN = "__parent"


class _Table:
    """A cached relation indexed for tagging: rows grouped by parent id.

    ``result`` may be a plain :class:`ResultSet` or a columnar
    :class:`~repro.relational.source.BatchedResultSet`; grouping iterates
    rows either way.
    """

    def __init__(self, result, sort_columns: list[str]):
        self.columns = result.columns
        self.by_parent: dict[object, list[tuple]] = {}
        parent_index = (result.columns.index(PARENT_COLUMN)
                        if PARENT_COLUMN in result.columns else None)
        sort_indexes = [result.columns.index(c) for c in sort_columns
                        if c in result.columns]
        for row in result:
            key = row[parent_index] if parent_index is not None else None
            self.by_parent.setdefault(key, []).append(row)
        for rows in self.by_parent.values():
            rows.sort(key=lambda row: tuple(
                (row[i] is not None, str(row[i])) for i in sort_indexes))

    def rows_for(self, parent_id) -> list[tuple]:
        return self.by_parent.get(parent_id, [])

    def value(self, row: tuple, column: str):
        return row[self.columns.index(column)]


def build_document(plan: TaggingPlan, cache: dict[str, ResultSet],
                   root_inh: dict, reuse=None) -> XMLElement:
    """Sort-merge the cached relations into the final XML tree.

    ``reuse`` (a :class:`~repro.runtime.incremental.TaggingReuse`) enables
    incremental tagging: clean relations keep their previous group+sort
    index, and subtrees at ``reuse.splice_paths`` are deep-copied from the
    previous document's memo instead of rebuilt; the run's own subtrees
    and indexes are recorded into ``reuse.record`` either way.
    """
    builder = _TreeBuilder(plan, cache, root_inh, reuse)
    return builder.build()


class _TreeBuilder:
    def __init__(self, plan: TaggingPlan, cache: dict[str, ResultSet],
                 root_inh: dict, reuse=None):
        self.plan = plan
        self.cache = cache
        self.root_inh = root_inh
        self.reuse = reuse
        self.aig = plan.tree.aig
        memo = reuse.memo if reuse is not None else None
        self.tables: dict[str, _Table] = {}
        for path, node_name in plan.table_of.items():
            if node_name not in cache:
                raise EvaluationError(
                    f"tagging input {node_name!r} was not produced")
            table = None
            if (reuse is not None and memo is not None
                    and path in reuse.table_paths):
                table = memo.tables.get(path)
            if table is None:
                table = _Table(cache[node_name],
                               plan.sort_columns.get(path, []))
            else:
                reuse.tables_reused += 1
            self.tables[path] = table
            if reuse is not None:
                reuse.record.tables[path] = table
        self.conditions: dict[str, _Table] = {}
        for path, node_name in plan.condition_of.items():
            condition = None
            if (reuse is not None and memo is not None
                    and path in reuse.condition_paths):
                condition = memo.condition_tables.get(path)
            if condition is None:
                condition = _Table(cache[node_name], [])
            else:
                reuse.tables_reused += 1
            self.conditions[path] = condition
            if reuse is not None:
                reuse.record.condition_tables[path] = condition
        #: current anchor row per iteration-occurrence path
        self.anchor_rows: dict[str, tuple] = {}

    # ------------------------------------------------------------------
    def build(self) -> XMLElement:
        root_occurrence = self.plan.tree.root
        root = XMLElement(root_occurrence.element_type)
        self._fill(root_occurrence, root)
        return root

    def _fill(self, occurrence: Occurrence, node: XMLElement) -> None:
        """Populate ``node`` (an instance of ``occurrence``)."""
        model = self.aig.dtd.production(occurrence.element_type)
        if isinstance(model, PCDATA):
            value = self._text_value(occurrence)
            node.append(XMLText("" if value is None else str(value)))
        elif isinstance(model, Empty):
            return
        elif isinstance(model, Star):
            child = occurrence.children[0]
            self._emit_iteration(child, node)
        elif isinstance(model, Choice):
            self._emit_choice(occurrence, node)
        else:
            assert isinstance(model, Sequence)
            for child in occurrence.children:
                child_node = XMLElement(child.element_type)
                node.append(child_node)
                self._fill(child, child_node)

    def _emit_iteration(self, occurrence: Occurrence,
                        parent_node: XMLElement) -> None:
        table = self.tables[occurrence.path]
        parent_anchor = occurrence.parent_anchor()
        if parent_anchor.parent is None and parent_anchor.path not in \
                self.anchor_rows:
            parent_id = None
        else:
            parent_row = self.anchor_rows[parent_anchor.path]
            parent_id = self.tables[parent_anchor.path].value(parent_row,
                                                              ID_COLUMN)
        reuse = self.reuse
        splice_from = None
        if reuse is not None:
            if (reuse.memo is not None
                    and occurrence.path in reuse.splice_paths):
                splice_from = reuse.memo.elements
            id_index = table.columns.index(ID_COLUMN)
        for row in table.rows_for(parent_id):
            if reuse is not None:
                key = (occurrence.path, row[id_index])
                if splice_from is not None and key in splice_from:
                    # Clean subtree: graft a deep copy of the memo's
                    # element and carry the *private* memo element itself
                    # forward.  Only copies ever enter the returned
                    # document, so caller-side mutation of a spliced
                    # subtree can never reach the cache.
                    parent_node.append(splice_from[key].copy())
                    reuse.record.elements[key] = splice_from[key]
                    reuse.spliced += 1
                    continue
            child_node = XMLElement(occurrence.element_type)
            parent_node.append(child_node)
            self.anchor_rows[occurrence.path] = row
            self._fill(occurrence, child_node)
            if reuse is not None:
                # memoize a private copy, not the document-resident node:
                # the caller owns the returned document and may mutate it
                reuse.record.elements[key] = child_node.copy()
        self.anchor_rows.pop(occurrence.path, None)

    def _emit_choice(self, occurrence: Occurrence,
                     node: XMLElement) -> None:
        condition = self.conditions[occurrence.path]
        anchor = occurrence.anchor
        if anchor.parent is None:
            rows = condition.rows_for(None)
            if not rows:
                rows = [row for group in condition.by_parent.values()
                        for row in group]
        else:
            anchor_row = self.anchor_rows[anchor.path]
            anchor_id = self.tables[anchor.path].value(anchor_row, ID_COLUMN)
            rows = condition.rows_for(anchor_id)
        if not rows:
            raise EvaluationError(
                f"condition query of {occurrence.element_type!r} returned "
                f"no value for an instance at {occurrence.path}")
        selector = rows[0][0]
        try:
            index = int(selector)
        except (TypeError, ValueError):
            raise EvaluationError(
                f"condition query of {occurrence.element_type!r} returned "
                f"non-integer {selector!r}") from None
        rule = self.aig.rule_for(occurrence.element_type)
        targets = rule.selector_targets(
            [child.element_type for child in occurrence.children])
        if not 1 <= index <= len(targets):
            raise EvaluationError(
                f"condition query of {occurrence.element_type!r} returned "
                f"{index}, outside [1, {len(targets)}]")
        chosen_name = targets[index - 1]
        if chosen_name is None:
            from repro.errors import RecursionTruncated
            raise RecursionTruncated(
                f"condition query of {occurrence.element_type!r} selected "
                f"an alternative truncated by recursion unfolding; increase "
                f"the unfold depth")
        chosen = occurrence.child(chosen_name)
        child_node = XMLElement(chosen.element_type)
        node.append(child_node)
        self._fill(chosen, child_node)

    # ------------------------------------------------------------------
    def _text_value(self, occurrence: Occurrence):
        provenance = self.plan.text_of[occurrence.path]
        if isinstance(provenance, ConstValue):
            return provenance.value
        if isinstance(provenance, RootValue):
            return self.root_inh.get(provenance.member)
        assert isinstance(provenance, TableColumn)
        row = self.anchor_rows.get(provenance.occurrence.path)
        if row is None:
            raise EvaluationError(
                f"no current row for {provenance.occurrence.path} while "
                f"tagging {occurrence.path}")
        return self.tables[provenance.occurrence.path].value(
            row, provenance.column)


# ----------------------------------------------------------------------
# streaming tagging (docs/DATAPLANE.md)
# ----------------------------------------------------------------------
class NullEventSink:
    """Sink that discards events (used for truncation dry-runs)."""

    def start(self, tag: str) -> None:
        pass

    def text(self, value: str) -> None:
        pass

    def end(self) -> None:
        pass


def stream_document(plan: TaggingPlan, cache: dict, root_inh: dict,
                    *sinks, rename=None) -> int:
    """Emit the document as ``start``/``text``/``end`` events, in the exact
    order :func:`build_document` would materialize it.

    ``sinks`` are objects with ``start(tag)`` / ``text(value)`` / ``end()``
    methods — typically a :class:`repro.xmlmodel.serialize.StreamSerializer`
    plus a :class:`repro.constraints.StreamingConstraintChecker`.
    ``rename`` (usually :func:`repro.dtd.analysis.base_name`) is applied to
    every emitted tag, replacing the post-hoc
    :func:`~repro.runtime.recursion.strip_unfolding` pass — the whole
    point of streaming is that no tree exists to rename afterwards.

    Raises exactly the errors the materializing path raises (including
    :class:`~repro.errors.RecursionTruncated` from a choice selecting a
    truncated alternative), so callers can dry-run with a
    :class:`NullEventSink` before committing bytes to a real writer.
    Returns the number of elements emitted.
    """
    builder = _StreamBuilder(plan, cache, root_inh, sinks, rename)
    builder.build()
    return builder.elements


class _StreamBuilder:
    """Mirrors :class:`_TreeBuilder`'s traversal, emitting events instead
    of nodes; no XML tree, serialized string, or memo is ever built."""

    def __init__(self, plan: TaggingPlan, cache: dict, root_inh: dict,
                 sinks, rename=None):
        self.plan = plan
        self.cache = cache
        self.root_inh = root_inh
        self.sinks = sinks
        self.rename = rename or (lambda tag: tag)
        self.aig = plan.tree.aig
        self.elements = 0
        self.tables: dict[str, _Table] = {}
        for path, node_name in plan.table_of.items():
            if node_name not in cache:
                raise EvaluationError(
                    f"tagging input {node_name!r} was not produced")
            self.tables[path] = _Table(cache[node_name],
                                       plan.sort_columns.get(path, []))
        self.conditions: dict[str, _Table] = {}
        for path, node_name in plan.condition_of.items():
            self.conditions[path] = _Table(cache[node_name], [])
        self.anchor_rows: dict[str, tuple] = {}

    # -- event emission -------------------------------------------------
    def _start(self, tag: str) -> None:
        self.elements += 1
        renamed = self.rename(tag)
        for sink in self.sinks:
            sink.start(renamed)

    def _text(self, value: str) -> None:
        for sink in self.sinks:
            sink.text(value)

    def _end(self) -> None:
        for sink in self.sinks:
            sink.end()

    # -- traversal (kept in lockstep with _TreeBuilder) -----------------
    def build(self) -> None:
        root_occurrence = self.plan.tree.root
        self._start(root_occurrence.element_type)
        self._fill(root_occurrence)
        self._end()

    def _fill(self, occurrence: Occurrence) -> None:
        model = self.aig.dtd.production(occurrence.element_type)
        if isinstance(model, PCDATA):
            value = self._text_value(occurrence)
            self._text("" if value is None else str(value))
        elif isinstance(model, Empty):
            return
        elif isinstance(model, Star):
            self._emit_iteration(occurrence.children[0])
        elif isinstance(model, Choice):
            self._emit_choice(occurrence)
        else:
            assert isinstance(model, Sequence)
            for child in occurrence.children:
                self._start(child.element_type)
                self._fill(child)
                self._end()

    def _emit_iteration(self, occurrence: Occurrence) -> None:
        table = self.tables[occurrence.path]
        parent_anchor = occurrence.parent_anchor()
        if parent_anchor.parent is None and parent_anchor.path not in \
                self.anchor_rows:
            parent_id = None
        else:
            parent_row = self.anchor_rows[parent_anchor.path]
            parent_id = self.tables[parent_anchor.path].value(parent_row,
                                                              ID_COLUMN)
        for row in table.rows_for(parent_id):
            self._start(occurrence.element_type)
            self.anchor_rows[occurrence.path] = row
            self._fill(occurrence)
            self._end()
        self.anchor_rows.pop(occurrence.path, None)

    def _emit_choice(self, occurrence: Occurrence) -> None:
        condition = self.conditions[occurrence.path]
        anchor = occurrence.anchor
        if anchor.parent is None:
            rows = condition.rows_for(None)
            if not rows:
                rows = [row for group in condition.by_parent.values()
                        for row in group]
        else:
            anchor_row = self.anchor_rows[anchor.path]
            anchor_id = self.tables[anchor.path].value(anchor_row, ID_COLUMN)
            rows = condition.rows_for(anchor_id)
        if not rows:
            raise EvaluationError(
                f"condition query of {occurrence.element_type!r} returned "
                f"no value for an instance at {occurrence.path}")
        selector = rows[0][0]
        try:
            index = int(selector)
        except (TypeError, ValueError):
            raise EvaluationError(
                f"condition query of {occurrence.element_type!r} returned "
                f"non-integer {selector!r}") from None
        rule = self.aig.rule_for(occurrence.element_type)
        targets = rule.selector_targets(
            [child.element_type for child in occurrence.children])
        if not 1 <= index <= len(targets):
            raise EvaluationError(
                f"condition query of {occurrence.element_type!r} returned "
                f"{index}, outside [1, {len(targets)}]")
        chosen_name = targets[index - 1]
        if chosen_name is None:
            from repro.errors import RecursionTruncated
            raise RecursionTruncated(
                f"condition query of {occurrence.element_type!r} selected "
                f"an alternative truncated by recursion unfolding; increase "
                f"the unfold depth")
        chosen = occurrence.child(chosen_name)
        self._start(chosen.element_type)
        self._fill(chosen)
        self._end()

    def _text_value(self, occurrence: Occurrence):
        provenance = self.plan.text_of[occurrence.path]
        if isinstance(provenance, ConstValue):
            return provenance.value
        if isinstance(provenance, RootValue):
            return self.root_inh.get(provenance.member)
        assert isinstance(provenance, TableColumn)
        row = self.anchor_rows.get(provenance.occurrence.path)
        if row is None:
            raise EvaluationError(
                f"no current row for {provenance.occurrence.path} while "
                f"tagging {occurrence.path}")
        return self.tables[provenance.occurrence.path].value(
            row, provenance.column)
