"""The AIG middleware facade (Fig. 5).

``Middleware.evaluate`` runs the four phases end to end:

1. **pre-processing** — recursion unfolding to the depth estimate
   (Section 5.5), constraint compilation, multi-source decomposition, copy
   elimination / occurrence analysis (Sections 3.3–3.4, 4);
2. **optimization** — query-dependency-graph construction, cost estimation,
   Algorithm Merge + Algorithm Schedule (Sections 5.2–5.4; merging can be
   disabled to reproduce the Fig. 10 baseline);
3. **execution** — the plan runs against the real SQLite sources with
   simulated communication (Section 5.1);
4. **tagging** — cached relations are sort-merged into the final document,
   unfolding suffixes stripped, so the output conforms to the original DTD.

If the recursion turned out deeper than estimated — the deepest unfolded
level still finds expandable nodes — the run is repeated with a larger
depth, mirroring the paper's runtime re-unrolling loop.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field

from repro.errors import EvaluationError, RecursionDepthExceeded
from repro.dtd.analysis import recursive_types
from repro.obs.tracer import NULL_TRACER
from repro.relational.network import Network
from repro.relational.source import DataSource, MEDIATOR_NAME, Mediator
from repro.relational.statistics import StatisticsCatalog
from repro.xmlmodel.node import XMLElement
from repro.aig.grammar import AIG
from repro.compilation.specialize import specialize
from repro.optimizer.cost import CostModel, plan_cost
from repro.optimizer.merge import merge as merge_graph, unmerged_plan
from repro.optimizer.qdg import build_qdg
from repro.runtime.engine import Engine, EngineResult
from repro.runtime.incremental import (
    ResultCache,
    TaggingMemo,
    TaggingReuse,
    compute_fingerprints,
    index_reuse_paths,
    plan_increment,
    splice_paths_for,
)
from repro.runtime.recursion import strip_unfolding, unfold_aig
from repro.runtime.tagging import build_document

logger = logging.getLogger("repro.middleware")


@dataclass
class ExecutionReport:
    """What one middleware evaluation did and how long it (would have)
    taken."""

    document: XMLElement
    response_time: float            # simulated seconds (eval + comm)
    estimated_cost: float           # optimizer's predicted cost(P)
    measured_seconds: float         # actual wall time of execution phase
    queries_executed: int
    bytes_shipped: int
    node_count: int                 # QDG size after optimization
    merged: bool
    unfold_depth: int | None
    optimization_seconds: float = 0.0
    violations: list = field(default_factory=list)  # report-mode findings
    parallel_speedup: float = 1.0   # sequential-sum ÷ measured wall time
    workers: int = 1                # resolved lane count of the run
    #: :class:`~repro.resilience.report.FailureReport` when the run was
    #: degraded (subtrees skipped after a source failure), else ``None``.
    failure_report: object = None
    #: Incremental re-evaluation (``Middleware(incremental=True)``, see
    #: docs/INCREMENTAL.md): nodes replayed from the result cache and
    #: nodes found tainted (0/0 when the feature is off or the cache is
    #: cold at this depth).
    reused_nodes: int = 0
    tainted_nodes: int = 0
    #: Subtree instances of the previous document spliced by the tagging
    #: phase instead of rebuilt.
    subtrees_spliced: int = 0
    #: Sharded evaluation (``Middleware(shards=N)``, docs/SHARDING.md):
    #: worker-process count of the run (1 = single-process path), rows of
    #: the driving query each shard evaluated, parent-side reconcile wall
    #: time, pickled bytes shipped to/from workers, per-shard worker
    #: peak RSS (KiB) and per-shard process CPU seconds.
    shards: int = 1
    shard_rows: list = field(default_factory=list)
    reconcile_seconds: float = 0.0
    ipc_bytes: int = 0
    shard_peak_rss: list = field(default_factory=list)
    shard_cpu_seconds: list = field(default_factory=list)


@dataclass
class StreamReport:
    """What one streaming evaluation (``evaluate_stream``) did.

    No ``document``: the tree is never materialized — serialized bytes went
    straight to the caller's writer.  ``constraint_violations`` holds the
    streaming checker's verdicts when constraints were passed (identical to
    ``check_constraints`` over the materialized document).
    """

    response_time: float
    estimated_cost: float
    measured_seconds: float
    queries_executed: int
    bytes_shipped: int
    node_count: int
    merged: bool
    unfold_depth: int | None
    elements: int                   # elements streamed
    characters: int                 # characters written
    violations: list = field(default_factory=list)
    constraint_violations: list = field(default_factory=list)
    failure_report: object = None


class Middleware:
    """Evaluates an AIG against a set of data sources."""

    def __init__(self, aig: AIG, sources: dict[str, DataSource],
                 network: Network | None = None,
                 stats: StatisticsCatalog | None = None,
                 merging: bool = True,
                 unfold_depth: int | str = 4,
                 max_unfold_depth: int = 64,
                 query_overhead: float | None = None,
                 scheduling: str = "static",
                 violation_mode: str = "abort",
                 workers: int | str = 1,
                 emulate_overheads: bool = False,
                 tracer=None,
                 retry_policy=None,
                 deadline: float | None = None,
                 on_source_failure: str = "abort",
                 breaker_policy=None,
                 incremental: bool = False,
                 pushdown: bool = False,
                 columnar: bool | int = False,
                 cost_feedback=None,
                 ledger=None,
                 shards: int = 1):
        #: Observability handle (see :mod:`repro.obs`): a recording
        #: :class:`~repro.obs.Tracer` captures per-stage spans and metrics
        #: for every evaluation; the default no-op tracer leaves the hot
        #: path unchanged.
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.aig = aig
        self.sources = sources
        self.network = network or Network()
        self.stats = stats or StatisticsCatalog.from_sources(
            list(sources.values()))
        self.merging = merging
        self.unfold_depth = unfold_depth
        self.max_unfold_depth = max_unfold_depth
        from repro.optimizer.cost import QUERY_OVERHEAD
        self.query_overhead = (QUERY_OVERHEAD if query_overhead is None
                               else query_overhead)
        if scheduling not in ("static", "dynamic"):
            raise EvaluationError(
                f"scheduling must be 'static' or 'dynamic', "
                f"got {scheduling!r}")
        self.scheduling = scheduling
        self.violation_mode = violation_mode
        if workers != "auto" and (isinstance(workers, bool)
                                  or not isinstance(workers, int)
                                  or workers < 1):
            raise EvaluationError(
                f"workers must be a positive integer or 'auto', "
                f"got {workers!r}")
        self.workers = workers
        self.emulate_overheads = emulate_overheads
        from repro.resilience.retry import RetryPolicy
        if isinstance(retry_policy, int) and not isinstance(retry_policy,
                                                            bool):
            retry_policy = RetryPolicy(retries=retry_policy)
        if retry_policy is not None and not isinstance(retry_policy,
                                                       RetryPolicy):
            raise EvaluationError(
                f"retry_policy must be a RetryPolicy or int, "
                f"got {retry_policy!r}")
        self.retry_policy = retry_policy
        self.deadline = deadline
        if on_source_failure not in ("abort", "degrade"):
            raise EvaluationError(
                f"on_source_failure must be 'abort' or 'degrade', "
                f"got {on_source_failure!r}")
        self.on_source_failure = on_source_failure
        #: Breaker state persists *across* evaluations — an open breaker
        #: from one daily report still refuses the source in the next.
        self.breakers = None
        if breaker_policy is not None:
            from repro.resilience.breaker import BreakerBoard
            self.breakers = BreakerBoard(
                breaker_policy, listener=self._on_breaker_transition)
        #: The middleware owns one persistent mediator shared by every
        #: evaluation: pooled connections and compiled statements stay warm
        #: across runs, and ``invalidate_plans`` can actually drop stray
        #: cache tables (each run's own are dropped by ``Engine.cleanup``).
        self.mediator = Mediator()
        #: Columnar data plane (docs/DATAPLANE.md): when set, every source
        #: (and the mediator) drains cursors with ``fetchmany`` into
        #: value-interned :class:`~repro.relational.source.BatchedResultSet`
        #: batches of this many rows instead of ``fetchall`` tuple lists.
        self.pushdown = pushdown
        if columnar is True:
            from repro.relational.source import DEFAULT_BATCH_ROWS
            columnar = DEFAULT_BATCH_ROWS
        if columnar is not False and (not isinstance(columnar, int)
                                      or columnar < 1):
            raise EvaluationError(
                f"columnar must be False, True, or a positive batch size, "
                f"got {columnar!r}")
        self.batch_rows = columnar if columnar else None
        if self.batch_rows:
            for source in self.sources.values():
                source.batch_rows = self.batch_rows
            self.mediator.batch_rows = self.batch_rows
        #: Incremental re-evaluation (docs/INCREMENTAL.md): version-stamped
        #: result caching with delta-driven QDG invalidation.  One
        #: :class:`~repro.runtime.incremental.ResultCache` per unfold depth,
        #: committed only after fully successful runs.
        self.incremental = incremental
        self._result_caches: dict = {}
        #: Cost feedback (docs/OBSERVABILITY.md): a
        #: :class:`~repro.obs.feedback.CostFeedbackStore` (or a path to
        #: persist one at) that absorbs measured per-node costs after every
        #: successful run and corrects the cost model's estimates on the
        #: next compile of the same plan.
        if isinstance(cost_feedback, str):
            from repro.obs.feedback import CostFeedbackStore
            cost_feedback = CostFeedbackStore(cost_feedback)
        self.cost_feedback = cost_feedback
        #: Run ledger (docs/OBSERVABILITY.md): a
        #: :class:`~repro.obs.ledger.RunLedger` (or a path to one) that
        #: gets one JSONL record appended per evaluation.
        if isinstance(ledger, str):
            from repro.obs.ledger import RunLedger
            ledger = RunLedger(ledger)
        self.ledger = ledger
        #: Sharded multi-process evaluation (docs/SHARDING.md): when > 1,
        #: ``evaluate`` first tries to partition the document at an
        #: eligible set-valued production and run the key ranges in worker
        #: processes, falling back to the single-process path when the AIG
        #: is not partitionable.
        if isinstance(shards, bool) or not isinstance(shards, int) \
                or shards < 1:
            raise EvaluationError(
                f"shards must be a positive integer, got {shards!r}")
        self.shards = shards
        #: Connections pre-leased for a whole batch (``evaluate_batch``).
        self._preleased: dict = {}
        #: Concurrency control (docs/SERVICE.md).  ``_prepare_lock`` guards
        #: the prepared-plan cache: the check-then-insert and the
        #: stale-generation sweep must be atomic or two concurrent callers
        #: duplicate optimization work and interleave ``del``/insert.
        #: ``_run_lock`` serializes the execution+tagging phase — sources
        #: are *single-flight* (one query at a time, see
        #: :class:`~repro.relational.source.DataSource`), the engine's
        #: mediator cache tables are named per-run, and the incremental
        #: result caches are committed mid-run, so overlapping executions
        #: on one instance would corrupt each other.  Reentrant so
        #: ``evaluate_batch`` can hold it across its member evaluations.
        self._prepared: dict = {}
        self._prepare_lock = threading.Lock()
        self._run_lock = threading.RLock()
        #: Optimization passes actually executed (cache misses in
        #: :meth:`prepare`).  A counting hook for tests and the service
        #: layer: under concurrent reuse this must grow once per distinct
        #: ``(depth, feedback generation)``, never once per caller.
        self.prepare_count = 0

    def _on_breaker_transition(self, source: str, old: str,
                               new: str) -> None:
        logger.warning("circuit breaker for %s: %s -> %s", source, old, new)
        self.tracer.metrics.add("breaker_transitions", 1)
        self.tracer.metrics.add(f"breaker_transitions.{source}", 1)

    # ------------------------------------------------------------------
    def evaluate(self, root_inh: dict, tracer=None) -> ExecutionReport:
        """Generate the document; raises
        :class:`~repro.errors.EvaluationAborted` on constraint violation.

        Safe to call from concurrent threads on one shared instance: plan
        preparation is shared (and never duplicated) across callers, while
        execution+tagging serializes on the run lock — sources are
        single-flight and the incremental caches commit mid-run, so
        overlapping executions would corrupt each other.  ``tracer``
        (optional) records this call's spans/metrics into a per-request
        tracer instead of the instance-wide one, so per-run gauges
        (``qdg_nodes``, ``document_nodes``, ...) are never clobbered by a
        concurrent caller's run.
        """
        from repro.errors import RecursionTruncated
        tracer = self.tracer if tracer is None else tracer
        if self.shards > 1:
            # Sharded path (docs/SHARDING.md).  Holds the run lock like a
            # normal run: the driving query and source dumps hit the
            # single-flight sources.  Ledger, cost feedback, and the
            # incremental caches are per-process state and deliberately
            # stay untouched on sharded runs.
            from repro.runtime.sharding import evaluate_sharded
            with self._run_lock:
                sharded = evaluate_sharded(self, dict(root_inh), tracer)
            if sharded is not None:
                return sharded
        recursive = bool(recursive_types(self.aig.dtd))
        depth = self._initial_depth() if recursive else None
        with self._run_lock:
            while True:
                try:
                    report = self._evaluate_at_depth(root_inh, depth, tracer)
                except RecursionTruncated:
                    # A choice branch was cut off below the estimate: deepen
                    # (the choice analogue of the star-rule blocked-query
                    # test).
                    report = None
                if report is not None and (
                        not recursive
                        or not self._needs_deeper(report, depth)):
                    return report
                logger.warning("recursion deeper than unfolding estimate "
                               "%s; re-unrolling at depth %s", depth,
                               depth * 2)
                tracer.metrics.add("recursion_reunrollings", 1)
                depth = depth * 2
                if depth > self.max_unfold_depth:
                    raise RecursionDepthExceeded(
                        f"recursion deeper than max_unfold_depth="
                        f"{self.max_unfold_depth}")

    def evaluate_stream(self, root_inh: dict, write, indent: int | None = None,
                        constraints: list | None = None,
                        tracer=None) -> StreamReport:
        """Generate the document as a byte stream through ``write``.

        The tagging phase runs as a sort-merge event stream
        (:func:`~repro.runtime.tagging.stream_document`): serialized XML is
        emitted incrementally through a
        :class:`~repro.xmlmodel.serialize.StreamSerializer` and is
        byte-identical to ``serialize(report.document, indent)`` of a
        materialized :meth:`evaluate` run.  ``constraints`` (optional) are
        checked on the partial stream by a
        :class:`~repro.constraints.StreamingConstraintChecker` with verdicts
        identical to the tree checker's.

        For recursive AIGs each depth attempt first dry-runs the stream
        against a null sink — truncation (and the blocked-query test) must
        surface *before* any byte reaches ``write``, since a stream cannot
        be retracted the way an unfinished tree can.  Incremental reuse is
        skipped: splicing memoized subtrees requires a materialized tree.
        """
        tracer = self.tracer if tracer is None else tracer
        recursive = bool(recursive_types(self.aig.dtd))
        depth = self._initial_depth() if recursive else None
        with self._run_lock:
            while True:
                report = self._stream_at_depth(root_inh, depth, write,
                                               indent, constraints,
                                               recursive, tracer)
                if report is not None:
                    return report
                logger.warning("recursion deeper than unfolding estimate "
                               "%s; re-unrolling at depth %s", depth,
                               depth * 2)
                tracer.metrics.add("recursion_reunrollings", 1)
                depth = depth * 2
                if depth > self.max_unfold_depth:
                    raise RecursionDepthExceeded(
                        f"recursion deeper than max_unfold_depth="
                        f"{self.max_unfold_depth}")

    def _stream_at_depth(self, root_inh: dict, depth: int | None, write,
                         indent: int | None, constraints: list | None,
                         recursive: bool, tracer=None) -> StreamReport | None:
        from repro.errors import RecursionTruncated
        from repro.dtd.analysis import base_name
        from repro.constraints import StreamingConstraintChecker
        from repro.xmlmodel.serialize import StreamSerializer
        from repro.runtime.tagging import NullEventSink, stream_document

        tracer = self.tracer if tracer is None else tracer
        metrics_before = (tracer.metrics.snapshot()
                          if self.ledger is not None else None)
        with tracer.span("evaluate-stream", "pipeline", depth=depth):
            graph, plan, tagging_plan, estimated_cost, estimates = \
                self.prepare(depth, tracer=tracer)
            scheduler = None
            if self.scheduling == "dynamic":
                from repro.runtime.dynamic import DynamicScheduler
                scheduler = DynamicScheduler(graph, estimates, self.network)
            engine = Engine(graph, plan, self.sources, self.network,
                            mediator=self.mediator,
                            query_overhead=self.query_overhead,
                            dynamic_scheduler=scheduler,
                            violation_mode=self.violation_mode,
                            workers=self.workers,
                            emulate_overheads=self.emulate_overheads,
                            tracer=tracer,
                            retry_policy=self.retry_policy,
                            breakers=self.breakers,
                            on_source_failure=self.on_source_failure,
                            deadline=self.deadline,
                            tagging_plan=tagging_plan,
                            preleased=self._preleased)
            try:
                result = engine.run(root_inh)
                self._last_result = result
                self._last_tagging = tagging_plan
                self._last_depth = depth
                rename = base_name if depth is not None else None
                if recursive:
                    try:
                        with tracer.span("tagging-dryrun", "tagging"):
                            stream_document(tagging_plan, result.cache,
                                            root_inh, NullEventSink(),
                                            rename=rename)
                    except RecursionTruncated:
                        return None
                    if self._needs_deeper(None, depth):
                        return None
                serializer = StreamSerializer(write, indent=indent)
                sinks: list = [serializer]
                checker = None
                if constraints:
                    checker = StreamingConstraintChecker(constraints)
                    sinks.append(checker)
                with tracer.span("tagging", "tagging") as span:
                    elements = stream_document(tagging_plan, result.cache,
                                               root_inh, *sinks,
                                               rename=rename)
                    span.set(elements=elements,
                             characters=serializer.characters)
            finally:
                engine.cleanup()
            tracer.metrics.set_gauge("streamed_elements", elements)
            tracer.metrics.set_gauge("document_characters",
                                     serializer.characters)
            tracer.metrics.set_gauge("unfold_depth",
                                     0 if depth is None else depth)
            tracer.metrics.add("evaluations", 1)
            tracer.metrics.observe("evaluation_latency_seconds",
                                   result.measured_seconds)
        self._last_graph = graph
        self._last_estimates = estimates
        if (self.cost_feedback is not None
                and result.failure_report is None):
            self.cost_feedback.observe_run(graph, result.timings)
        stream_violations = (checker.result() if checker is not None else [])
        if self.ledger is not None:
            self._record_run(
                "stream", graph, result, metrics_before,
                plan_info={"estimated_cost": round(estimated_cost, 6),
                           "response_time": round(result.response_time, 6),
                           "node_count": len(graph),
                           "unfold_depth": depth},
                document_bytes=serializer.characters,
                violations=list(result.violations) + list(stream_violations),
                extra={"streamed_elements": elements},
                tracer=tracer)
        return StreamReport(
            response_time=result.response_time,
            estimated_cost=estimated_cost,
            measured_seconds=result.measured_seconds,
            queries_executed=result.queries_executed,
            bytes_shipped=result.bytes_shipped,
            node_count=len(graph),
            merged=self.merging,
            unfold_depth=depth,
            elements=elements,
            characters=serializer.characters,
            violations=list(result.violations),
            constraint_violations=stream_violations,
            failure_report=result.failure_report)

    def _initial_depth(self) -> int:
        """The user estimate, or a data-driven one for ``"auto"``.

        "auto" implements Section 7's chain-statistics idea via
        :func:`repro.runtime.recursion.estimate_recursion_depth`; when the
        recursive queries do not match the probe pattern, a conservative
        default of 4 is used and the runtime re-unrolling loop covers the
        rest.
        """
        if self.unfold_depth != "auto":
            return int(self.unfold_depth)
        from repro.runtime.recursion import estimate_recursion_depth
        estimated = estimate_recursion_depth(self.aig, self.sources,
                                             self.max_unfold_depth)
        return estimated if estimated else 4

    def prepare(self, depth: int | None = None, tracer=None):
        """Pre-processing + optimization only: returns (graph, plan,
        tagging plan, estimated cost, estimates).

        Results are cached per depth — the whole pipeline up to execution is
        input-independent, so evaluating many root attributes (the paper's
        *daily* reports) pays for optimization once.  With a cost-feedback
        store attached, the cache key also carries the store's generation:
        the plan is re-optimized exactly when new measurements arrived.

        Thread-safe: the cache probe, the stale-generation sweep, and the
        insert run under ``_prepare_lock``, so concurrent callers of a
        shared middleware never duplicate optimization work (asserted via
        :attr:`prepare_count`) and never interleave the sweep's ``del``
        with another caller's insert.  ``tracer`` (optional) scopes this
        call's spans and gauges to a per-request tracer instead of the
        instance-wide one — see docs/SERVICE.md.
        """
        tracer = self.tracer if tracer is None else tracer
        generation = (self.cost_feedback.generation
                      if self.cost_feedback is not None else None)
        key = (depth, generation)
        entry = self._prepared.get(key)
        if entry is not None:
            return entry
        with self._prepare_lock:
            entry = self._prepared.get(key)
            if entry is not None:
                return entry
            # Stale generations of the same depth are never consulted
            # again — drop them so feedback-driven re-prepares don't grow
            # the cache without bound.
            for stale in [item for item in self._prepared
                          if item[0] == depth]:
                del self._prepared[stale]
            working = self.aig
            if depth is not None:
                with tracer.span("unfold", "unfold", depth=depth):
                    working = unfold_aig(self.aig, depth)
            spec = specialize(working, self.stats, tracer=tracer)
            with tracer.span("build-qdg", "qdg"):
                graph, tagging_plan = build_qdg(spec, self.stats)
            if self.pushdown:
                from repro.optimizer.pushdown import apply_pushdown
                with tracer.span("pushdown", "optimize") as pushdown_span:
                    pushed = apply_pushdown(graph, tagging_plan,
                                            working.catalog)
                    pushdown_span.set(
                        columns_pruned=pushed.columns_pruned,
                        predicates_moved=pushed.predicates_moved)
                tracer.metrics.set_gauge("columns_read",
                                         pushed.columns_read)
                tracer.metrics.set_gauge("columns_available",
                                         pushed.columns_available)
                tracer.metrics.add("pushdown_columns_pruned",
                                   pushed.columns_pruned)
                tracer.metrics.add("pushdown_predicates_moved",
                                   pushed.predicates_moved)
            model = CostModel(self.stats, overhead=self.query_overhead,
                              feedback=self.cost_feedback)
            with tracer.span("merge+schedule", "optimize",
                             merging=self.merging) as optimize_span:
                if self.merging:
                    graph, plan, cost, estimates = merge_graph(
                        graph, model, self.network, tracer=tracer)
                else:
                    plan, cost, estimates = unmerged_plan(graph, model,
                                                          self.network)
                optimize_span.set(nodes=len(graph), predicted_cost=cost)
            tracer.metrics.set_gauge("qdg_nodes", len(graph))
            tracer.metrics.set_gauge("plan_cost_estimate_seconds", cost)
            logger.info("prepared plan (depth=%s): %d node(s), predicted "
                        "cost %.3fs, merging %s", depth, len(graph), cost,
                        "on" if self.merging else "off")
            entry = (graph, plan, tagging_plan, cost, estimates)
            self._prepared[key] = entry
            self.prepare_count += 1
            return entry

    def invalidate_plans(self) -> None:
        """Drop cached plans, incremental result caches, and any cached
        temp tables left on the mediator.

        Call after the sources' data changes enough to shift statistics —
        the plans stay correct either way, only their cost-optimality is
        affected.  The mediator sweep matters on a live middleware: a
        run's own cache tables are dropped by ``Engine.cleanup``, but a
        crash between runs (or an engine torn down mid-cleanup) can
        strand ``cache_N`` tables that would otherwise outlive every
        re-prepare; the mediator has no base relations, so every table
        found there is disposable.

        Takes the run lock first: an invalidation issued while another
        thread is mid-evaluation waits for that run to finish instead of
        sweeping the mediator tables (and result caches) out from under
        it.
        """
        with self._run_lock:
            with self._prepare_lock:
                self._prepared = {}
            self._result_caches = {}
            for table in self.mediator.table_names():
                try:
                    self.mediator.drop_table(table)
                except EvaluationError as error:
                    logger.warning("invalidate_plans: dropping mediator "
                                   "table %r failed: %s", table, error)

    def evaluate_batch(self, root_inh_values: list[dict],
                       tracer=None) -> list[ExecutionReport]:
        """Evaluate many root attributes against one prepared plan.

        The paper's scenario is a *daily* report: same AIG, same sources,
        different ``date``.  Optimization (specialize -> QDG -> merge ->
        schedule) runs once; only execution and tagging repeat.  The
        mediator connection is leased once for the whole batch — every
        entry's engine runs its mediator-side nodes over the same pooled
        connection instead of re-acquiring per evaluation.

        Holds the run lock across the whole batch (it is reentrant, so the
        member evaluations nest): ``_preleased`` is instance state, and a
        concurrent ``evaluate`` interleaving with the batch would ride the
        batch's mediator lease from another thread.
        """
        with self._run_lock:
            lease = self.mediator.acquire_connection()
            self._preleased = {MEDIATOR_NAME: lease}
            try:
                return [self.evaluate(dict(values), tracer=tracer)
                        for values in root_inh_values]
            finally:
                self._preleased = {}
                self.mediator.release_connection(lease)

    def explain(self, depth: int | None = None) -> str:
        """A human-readable report of the optimization decisions.

        Covers what EXPLAIN covers for a DBMS: the recursion unfolding, the
        decomposed multi-source sites, every query-dependency-graph node
        with its estimated cardinality, the per-source schedules with ℓevel
        priorities, the merges chosen, and the predicted ``cost(P)``.
        """
        from repro.dtd.analysis import recursive_types
        from repro.optimizer.schedule import levels

        if depth is None and recursive_types(self.aig.dtd):
            depth = self._initial_depth()
        graph, plan, tagging_plan, cost, estimates = self.prepare(depth)
        priority = levels(graph, estimates, self.network)
        lines = ["== AIG middleware plan =="]
        if depth is not None:
            lines.append(f"recursion unfolded to depth {depth}")
        lines.append(f"{len(graph)} plan nodes over sources "
                     f"{', '.join(graph.sources())}")
        lines.append("")
        lines.append("-- query dependency graph (topological) --")
        for node in graph.topological_order():
            estimate = estimates.get(node.name)
            cardinality = (f"~{estimate.cardinality:.0f} rows"
                           if estimate else "?")
            lines.append(f"  [{node.kind:9s}] {node.name} @{node.source} "
                         f"({cardinality})")
            members = getattr(node, "members", None)
            if members:
                for member in members:
                    lines.append(f"      + {member.name}")
            for producer in node.inputs:
                lines.append(f"      <- {producer}")
        lines.append("")
        lines.append("-- schedule (Algorithm Schedule, ℓevel priority) --")
        for source, sequence in sorted(plan.items()):
            lines.append(f"  {source}:")
            for name in sequence:
                lines.append(f"    ℓ={priority[name]:9.3f}  {name}")
        lines.append("")
        lines.append(f"predicted cost(P): {cost:.3f}s "
                     f"(merging {'on' if self.merging else 'off'}, "
                     f"{self.network})")
        if self.incremental:
            lines.append("")
            lines.append("-- incremental cache state --")
            # Run lock: a concurrent evaluation must not swap the result
            # caches (or the last root attributes) mid-report.
            self._run_lock.acquire()
            try:
                lines.extend(self._explain_cache_state(depth, graph))
            finally:
                self._run_lock.release()
        return "\n".join(lines)

    def _explain_cache_state(self, depth, graph) -> list[str]:
        lines: list[str] = []
        store = self._result_caches.get(depth)
        if (store is None or not store.entries
                or not hasattr(self, "_last_root_inh")):
            lines.append("  (cache cold: no committed evaluation at "
                         "this depth yet)")
        else:
            fingerprints = compute_fingerprints(graph, self.sources,
                                                self._last_root_inh)
            increment = plan_increment(graph, store.entries,
                                       fingerprints)
            for node in graph.topological_order():
                state = ("cached " if node.name in increment.reusable
                         else "TAINTED")
                lines.append(f"  [{state}] {node.name} @{node.source}")
            lines.append(f"  {len(increment.reusable)} node(s) "
                         f"reusable, {len(increment.tainted)} tainted "
                         f"(vs last evaluation's root attributes)")
        return lines

    def calibration_report(self):
        """Modeled-vs-measured cost report for the most recent evaluation.

        Joins the optimizer's per-node estimates (``eval_cost``, ``size``,
        cardinality — Section 5.2) against the engine's measured
        :class:`~repro.runtime.engine.NodeTiming` records; see
        :mod:`repro.obs.calibrate`.  Raises
        :class:`~repro.errors.EvaluationError` before any evaluation ran.
        """
        from repro.obs.calibrate import build_calibration
        if not hasattr(self, "_last_result"):
            raise EvaluationError(
                "calibration_report() requires a prior evaluate() run")
        # Join against the estimates that *planned* the last run (not a
        # fresh prepare): with cost feedback attached, a re-prepare would
        # already fold in what the run just measured and the report would
        # grade the model against its own answer key.
        return build_calibration(self._last_graph, self._last_estimates,
                                 self._last_result.timings)

    # ------------------------------------------------------------------
    def _evaluate_at_depth(self, root_inh: dict, depth: int | None,
                           tracer=None) -> ExecutionReport:
        tracer = self.tracer if tracer is None else tracer
        metrics_before = (tracer.metrics.snapshot()
                          if self.ledger is not None else None)
        with tracer.span("evaluate", "pipeline", depth=depth):
            optimization_started = time.perf_counter()
            graph, plan, tagging_plan, estimated_cost, estimates = \
                self.prepare(depth, tracer=tracer)
            optimization_seconds = (time.perf_counter()
                                    - optimization_started)
            scheduler = None
            if self.scheduling == "dynamic":
                from repro.runtime.dynamic import DynamicScheduler
                scheduler = DynamicScheduler(graph, estimates, self.network)
            store = None
            increment = None
            fingerprints = None
            if self.incremental:
                store = self._result_caches.setdefault(depth, ResultCache())
                with tracer.span("fingerprint", "optimize"):
                    fingerprints = compute_fingerprints(graph, self.sources,
                                                        root_inh)
                    increment = plan_increment(graph, store.entries,
                                               fingerprints)
                tracer.metrics.set_gauge("incremental_reused_nodes",
                                         len(increment.reusable))
                tracer.metrics.set_gauge("incremental_tainted_nodes",
                                         len(increment.tainted))
                self._last_root_inh = dict(root_inh)
            engine = Engine(graph, plan, self.sources, self.network,
                            mediator=self.mediator,
                            query_overhead=self.query_overhead,
                            dynamic_scheduler=scheduler,
                            violation_mode=self.violation_mode,
                            workers=self.workers,
                            emulate_overheads=self.emulate_overheads,
                            tracer=tracer,
                            retry_policy=self.retry_policy,
                            breakers=self.breakers,
                            on_source_failure=self.on_source_failure,
                            deadline=self.deadline,
                            tagging_plan=tagging_plan,
                            reuse=increment.reusable if increment else None,
                            fingerprints=fingerprints,
                            preleased=self._preleased)
            try:
                result = engine.run(root_inh)
                reuse = None
                if increment is not None:
                    table_paths, condition_paths = index_reuse_paths(
                        graph, tagging_plan, increment.tainted)
                    reuse = TaggingReuse(
                        memo=store.memo,
                        record=TaggingMemo(root_inh=dict(root_inh)),
                        splice_paths=splice_paths_for(
                            graph, tagging_plan, increment.tainted,
                            store.memo, root_inh),
                        table_paths=table_paths,
                        condition_paths=condition_paths)
                with tracer.span("tagging", "tagging") as tagging_span:
                    document = build_document(tagging_plan, result.cache,
                                              root_inh, reuse=reuse)
                    if depth is not None:
                        strip_unfolding(document)
                    tagging_span.set(document_nodes=document.size())
                    if reuse is not None:
                        tagging_span.set(subtrees_spliced=reuse.spliced,
                                         indexes_reused=reuse.tables_reused)
                        tracer.metrics.add("tagging_subtrees_spliced",
                                           reuse.spliced)
                        tracer.metrics.add("tagging_indexes_reused",
                                           reuse.tables_reused)
                # Commit only after a fully successful, non-degraded run:
                # a mid-run failure (or a skipped subtree) must never
                # poison the cache — the next evaluation simply finds the
                # previous (still fingerprint-valid) entries.
                if (store is not None and result.failure_report is None):
                    store.entries.update(result.cache_entries)
                    store.memo = reuse.record if reuse is not None else None
            finally:
                engine.cleanup()
            tracer.metrics.set_gauge("document_nodes", document.size())
            tracer.metrics.set_gauge("unfold_depth",
                                     0 if depth is None else depth)
            tracer.metrics.add("evaluations", 1)
            tracer.metrics.observe("evaluation_latency_seconds",
                                   result.measured_seconds)
        self._last_result = result
        self._last_tagging = tagging_plan
        self._last_depth = depth
        self._last_graph = graph
        self._last_estimates = estimates
        if (self.cost_feedback is not None
                and result.failure_report is None):
            self.cost_feedback.observe_run(graph, result.timings)
        if self.ledger is not None:
            from repro.xmlmodel.serialize import serialize
            self._record_run(
                "evaluate", graph, result, metrics_before,
                plan_info={"estimated_cost": round(estimated_cost, 6),
                           "response_time": round(result.response_time, 6),
                           "node_count": len(graph),
                           "unfold_depth": depth},
                document_bytes=len(serialize(document).encode("utf-8")),
                violations=result.violations,
                extra={"reused_nodes": result.reused_nodes,
                       "tainted_nodes": (len(increment.tainted)
                                         if increment is not None else 0)},
                tracer=tracer)
        return ExecutionReport(
            document=document,
            response_time=result.response_time,
            estimated_cost=estimated_cost,
            measured_seconds=result.measured_seconds,
            queries_executed=result.queries_executed,
            bytes_shipped=result.bytes_shipped,
            node_count=len(graph),
            merged=self.merging,
            unfold_depth=depth,
            optimization_seconds=optimization_seconds,
            violations=list(result.violations),
            parallel_speedup=result.parallel_speedup,
            workers=result.workers,
            failure_report=result.failure_report,
            reused_nodes=result.reused_nodes,
            tainted_nodes=(len(increment.tainted) if increment is not None
                           else 0),
            subtrees_spliced=(reuse.spliced if increment is not None
                              and reuse is not None else 0))

    # ------------------------------------------------------------------
    def _config_dict(self) -> dict:
        """The middleware knobs that shaped a run (ledger ``config``)."""
        return {
            "merging": self.merging,
            "scheduling": self.scheduling,
            "workers": self.workers,
            "unfold_depth": self.unfold_depth,
            "max_unfold_depth": self.max_unfold_depth,
            "violation_mode": self.violation_mode,
            "incremental": self.incremental,
            "pushdown": self.pushdown,
            "columnar_batch_rows": self.batch_rows,
            "query_overhead": self.query_overhead,
            "emulate_overheads": self.emulate_overheads,
            "on_source_failure": self.on_source_failure,
            "deadline": self.deadline,
            "retries": (self.retry_policy.retries
                        if self.retry_policy is not None else None),
            "cost_feedback": self.cost_feedback is not None,
            "shards": self.shards,
        }

    def _record_run(self, kind: str, graph, result, metrics_before,
                    plan_info: dict, document_bytes: int,
                    violations: list, extra: dict, tracer=None) -> None:
        """Append one run record to the attached ledger."""
        from repro.obs.ledger import build_run_record, metrics_delta
        tracer = self.tracer if tracer is None else tracer
        run_info = {
            "measured_seconds": round(result.measured_seconds, 6),
            "queries_executed": result.queries_executed,
            "bytes_shipped": result.bytes_shipped,
            "document_bytes": document_bytes,
            "degraded": result.failure_report is not None,
            "violations": len(violations),
        }
        run_info.update(extra)
        constraint_records = [str(violation) for violation in violations]
        record = build_run_record(
            kind, graph, result.timings,
            config=self._config_dict(),
            plan_info=plan_info,
            run_info=run_info,
            metrics=metrics_delta(metrics_before,
                                  tracer.metrics.snapshot()),
            constraints=constraint_records)
        self.ledger.append(record)

    # ------------------------------------------------------------------
    def _needs_deeper(self, report: ExecutionReport,
                      depth: int | None) -> bool:
        """Did the unfolding truncate live recursion?

        The deepest truncated copies came from ``B*`` productions that were
        rewritten to ``EMPTY``.  We re-run each such production's original
        iteration query against the deepest level's cached rows; any output
        means an expandable node was cut off (Section 5.5's blocked-query
        test) and the unfolding must be extended.
        """
        from repro.dtd.analysis import base_name
        from repro.dtd.model import Empty, Star
        from repro.aig.rules import StarRule
        from repro.sqlq.analyze import scalar_params

        if depth is None:
            return False
        cache = self._last_result.cache
        tree = self._last_tagging.tree
        for occurrence in tree.by_path.values():
            original_type = base_name(occurrence.element_type)
            if original_type == occurrence.element_type:
                continue
            unfolded_model = tree.aig.dtd.production(occurrence.element_type)
            original_model = self.aig.dtd.production(original_type)
            if not (isinstance(unfolded_model, Empty)
                    and isinstance(original_model, Star)):
                continue
            rule = self.aig.rule_for(original_type)
            assert isinstance(rule, StarRule)
            anchor = occurrence.anchor
            if anchor.parent is None:
                continue
            table_node = self._last_tagging.table_of.get(anchor.path)
            if table_node is None or not len(cache.get(table_node, [])):
                continue
            if self._probe_expandable(rule, occurrence, anchor, cache):
                return True
        return False

    def _probe_expandable(self, rule, occurrence, anchor, cache) -> bool:
        """Does the truncated star query produce rows for any live parent?"""
        from repro.sqlq.analyze import scalar_params
        from repro.sqlq.render import render_sqlite
        from repro.sqlq.ast import (ColumnRef, Comparison, Param, Literal,
                                    Query, SelectItem, TempTable)
        from repro.aig.functions import QueryFunc
        from repro.relational.source import Federation

        table_node = self._last_tagging.table_of[anchor.path]
        rows = cache[table_node]
        query = rule.child_query.query
        replacements = {}
        for param in scalar_params(query):
            ref = rule.child_query.binding_for(param)
            if ref.kind != "inh":
                return False  # cannot probe sibling-dependent recursion
            if ref.member not in rows.columns:
                return False
            replacements[param] = ColumnRef("__probe", ref.member)
        new_where = []
        for predicate in query.where:
            if isinstance(predicate, Comparison):
                left = replacements.get(predicate.left.name) \
                    if isinstance(predicate.left, Param) else predicate.left
                right = replacements.get(predicate.right.name) \
                    if isinstance(predicate.right, Param) else predicate.right
                new_where.append(Comparison(left or predicate.left,
                                            predicate.op,
                                            right or predicate.right))
            else:
                new_where.append(predicate)
        probe = Query(
            tuple(SelectItem(Literal(1), "hit") for _ in range(1)),
            query.from_items + (TempTable("__probe_input", "__probe",
                                          tuple(rows.columns)),),
            tuple(new_where))
        federation = Federation(list(self.sources.values()))
        federation.create_temp_table(rows.columns, rows.rows,
                                     "__probe_table")
        sql, params = render_sqlite(
            probe, bindings={"__probe_input": "__probe_table"},
            qualify_sources=True)
        result = federation.execute(sql + " LIMIT 1", tuple(params))
        return bool(result.rows)
